/**
 * @file
 * `mispsim` — the scenario driver CLI.
 *
 * Runs a declarative `.scn` scenario (machine topology x workload x
 * sweep axes) through the shared ScenarioRunner and emits a human
 * table plus optional machine-readable JSON. Every paper figure and
 * any new experiment is a spec file, not a C++ program:
 *
 *   $ ./build/mispsim scenarios/fig4.scn -o fig4.json
 *   $ ./build/mispsim scenarios/fig7.scn --quick --md
 *   $ ./build/mispsim scenarios/smoke.scn --dry-run
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "driver/report.hh"
#include "driver/runner.hh"
#include "sim/logging.hh"

using namespace misp;
using namespace misp::driver;

namespace {

int
usage(const char *argv0, int code)
{
    std::fprintf(
        code ? stderr : stdout,
        "usage: %s <scenario.scn> [options]\n"
        "\n"
        "Runs a declarative scenario: machines x workloads x sweep axes.\n"
        "Spec format: see docs/ARCHITECTURE.md (Scenario driver) and the\n"
        "checked-in examples under scenarios/.\n"
        "\n"
        "options:\n"
        "  -o FILE            write results as JSON to FILE\n"
        "  --metrics FILE     write the full metric frame (every sweep\n"
        "                     point x every metric, incl. derived\n"
        "                     speedup and per-10^6-instruction event\n"
        "                     rates) as deterministic JSON to FILE\n"
        "  --quick            apply the scenario's [quick] overrides\n"
        "  --jobs N           run grid points on N worker threads; all\n"
        "                     outputs (JSON, tables, --points) stay\n"
        "                     byte-identical to a serial run\n"
        "  --isolate          crash-isolated workers: fork one child\n"
        "                     process per grid point (up to N at once);\n"
        "                     a crashing point is recorded as\n"
        "                     worker_crashed instead of killing the\n"
        "                     sweep; outputs stay byte-identical\n"
        "  --deadline MS      (with --isolate) per-attempt wall-clock\n"
        "                     deadline; a worker exceeding it is\n"
        "                     SIGKILLed and its point recorded as\n"
        "                     worker_timeout (0 = none; default: the\n"
        "                     scenario's [run] point_deadline_ms)\n"
        "  --retries N        (with --isolate) relaunch a point up to N\n"
        "                     extra times after a transient failure\n"
        "                     (crash, timeout, snapshot error); the\n"
        "                     record keeps the attempt count\n"
        "  --backoff MS       (with --isolate) base relaunch delay;\n"
        "                     attempt k waits MS * 2^(k-1) ms\n"
        "  --inject SPEC      (with --isolate) deterministic fault\n"
        "                     injection, e.g. \"seed=7;crash@0;hang@2\"\n"
        "                     (kinds: crash, hang, corrupt_pipe,\n"
        "                     corrupt_snapshot, fork_fail; targets:\n"
        "                     point indices `1,3` / `0..2` or `p0.1`\n"
        "                     probability; `x1` bounds a fault to the\n"
        "                     first attempt); merged over the\n"
        "                     scenario's [faults] section\n"
        "  --on-failed P      what failed points do to reporting:\n"
        "                     fail (default, exit 1), skip (degrade\n"
        "                     gracefully: asserts skip affected\n"
        "                     groups, exit 4), require_all (asserts\n"
        "                     touching failed points fail)\n"
        "  --save-snapshot DIR  warm every grid point up for the\n"
        "                     scenario's [snapshot] warmup_ticks, write\n"
        "                     DIR/point_<k>.misnap, and keep running to\n"
        "                     completion (results unchanged)\n"
        "  --from-snapshot DIR  restore each grid point from\n"
        "                     DIR/point_<k>.misnap instead of booting\n"
        "                     cold; results are byte-identical to a\n"
        "                     cold run of the same spec (exception:\n"
        "                     --full-stats decode-cache hit/miss\n"
        "                     counters, which restart cold — the\n"
        "                     decode cache is derived state)\n"
        "  --engine=E         force the host execution engine on every\n"
        "                     machine: ref (per-instruction\n"
        "                     fetch+decode), cache (predecoded pages),\n"
        "                     or superblock (chained basic-block\n"
        "                     dispatch; the default). All engines\n"
        "                     produce bit-identical results; also\n"
        "                     honored from MISP_ENGINE=E\n"
        "  --no-decode-cache  alias for --engine=ref (also honored\n"
        "                     from MISP_NO_DECODE_CACHE=1)\n"
        "  --md               print the results table as markdown\n"
        "  --points           print canonical point lines only (the\n"
        "                     bench-equivalence diff format)\n"
        "  --dry-run          expand and print the grid without running\n"
        "  --full-stats       include a full stats dump per point in the\n"
        "                     JSON output\n"
        "  --verbose          keep the simulator's event log on stderr\n"
        "  --list-workloads   print the workload registry and exit\n"
        "  -h, --help         this message\n"
        "\n"
        "exit codes:\n"
        "  0  every point ran, every assert held\n"
        "  1  a point failed, an assert failed, or a spec error\n"
        "  2  usage error\n"
        "  4  completed with failed points (--on-failed skip /\n"
        "     [report] on_failed_points = skip) and everything else\n"
        "     passed\n",
        argv0);
    return code;
}

void
listWorkloads()
{
    std::printf("%-18s %s\n", "name", "suite");
    for (const wl::WorkloadInfo &info : wl::allWorkloads())
        std::printf("%-18s %s\n", info.name.c_str(), info.suite.c_str());
    for (const wl::WorkloadInfo &info : wl::utilWorkloads())
        std::printf("%-18s %s\n", info.name.c_str(), info.suite.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scnArg;
    std::string jsonPath;
    std::string metricsPath;
    bool quick = false;
    bool markdown = false;
    bool pointsOnly = false;
    bool dryRun = false;
    bool fullStats = false;
    bool verbose = false;
    bool forceEngine = false;
    misp::cpu::Engine engine = misp::cpu::Engine::Superblock;
    bool isolate = false;
    unsigned jobs = 1;
    std::string saveSnapshotDir;
    std::string fromSnapshotDir;
    std::string injectSpec;
    std::int64_t deadlineMs = -1;
    int retries = -1;
    int backoffMs = -1;
    std::string onFailed;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "-h") == 0 || std::strcmp(arg, "--help") == 0)
            return usage(argv[0], 0);
        if (std::strcmp(arg, "--list-workloads") == 0) {
            listWorkloads();
            return 0;
        }
        if (std::strcmp(arg, "-o") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr, "mispsim: -o needs a file argument\n");
                return 2;
            }
            jsonPath = argv[i];
        } else if (std::strcmp(arg, "--metrics") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --metrics needs a file argument\n");
                return 2;
            }
            metricsPath = argv[i];
        } else if (std::strcmp(arg, "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(arg, "--jobs") == 0) {
            if (++i >= argc || !parseUnsigned(argv[i], &jobs) ||
                jobs == 0) {
                std::fprintf(stderr,
                             "mispsim: --jobs needs a positive integer\n");
                return 2;
            }
        } else if (std::strcmp(arg, "--isolate") == 0) {
            isolate = true;
        } else if (std::strcmp(arg, "--deadline") == 0) {
            unsigned ms = 0;
            if (++i >= argc || !parseUnsigned(argv[i], &ms)) {
                std::fprintf(stderr,
                             "mispsim: --deadline needs a millisecond "
                             "count\n");
                return 2;
            }
            deadlineMs = static_cast<std::int64_t>(ms);
        } else if (std::strcmp(arg, "--retries") == 0) {
            unsigned n = 0;
            if (++i >= argc || !parseUnsigned(argv[i], &n)) {
                std::fprintf(stderr,
                             "mispsim: --retries needs an integer\n");
                return 2;
            }
            retries = static_cast<int>(n);
        } else if (std::strcmp(arg, "--backoff") == 0) {
            unsigned ms = 0;
            if (++i >= argc || !parseUnsigned(argv[i], &ms)) {
                std::fprintf(stderr,
                             "mispsim: --backoff needs a millisecond "
                             "count\n");
                return 2;
            }
            backoffMs = static_cast<int>(ms);
        } else if (std::strcmp(arg, "--inject") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --inject needs a fault spec\n");
                return 2;
            }
            injectSpec = argv[i];
        } else if (std::strcmp(arg, "--on-failed") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --on-failed needs fail, skip, or "
                             "require_all\n");
                return 2;
            }
            onFailed = argv[i];
        } else if (std::strcmp(arg, "--save-snapshot") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --save-snapshot needs a directory\n");
                return 2;
            }
            saveSnapshotDir = argv[i];
        } else if (std::strcmp(arg, "--from-snapshot") == 0) {
            if (++i >= argc) {
                std::fprintf(stderr,
                             "mispsim: --from-snapshot needs a directory\n");
                return 2;
            }
            fromSnapshotDir = argv[i];
        } else if (std::strncmp(arg, "--engine=", 9) == 0) {
            if (!misp::cpu::parseEngineName(arg + 9, &engine)) {
                std::fprintf(stderr,
                             "mispsim: --engine wants ref, cache, or "
                             "superblock, got '%s'\n",
                             arg + 9);
                return 2;
            }
            forceEngine = true;
        } else if (std::strcmp(arg, "--no-decode-cache") == 0) {
            engine = misp::cpu::Engine::Reference;
            forceEngine = true;
        } else if (std::strcmp(arg, "--md") == 0) {
            markdown = true;
        } else if (std::strcmp(arg, "--points") == 0) {
            pointsOnly = true;
        } else if (std::strcmp(arg, "--dry-run") == 0) {
            dryRun = true;
        } else if (std::strcmp(arg, "--full-stats") == 0) {
            fullStats = true;
        } else if (std::strcmp(arg, "--verbose") == 0) {
            verbose = true;
        } else if (arg[0] == '-') {
            std::fprintf(stderr, "mispsim: unknown option '%s'\n", arg);
            return usage(argv[0], 2);
        } else if (scnArg.empty()) {
            scnArg = arg;
        } else {
            std::fprintf(stderr, "mispsim: more than one scenario file\n");
            return usage(argv[0], 2);
        }
    }
    if (scnArg.empty())
        return usage(argv[0], 2);

    // Env overrides apply only when no CLI --engine flag was given.
    if (!forceEngine) {
        const char *envEngine = std::getenv("MISP_ENGINE");
        if (envEngine && envEngine[0] != '\0') {
            if (!misp::cpu::parseEngineName(envEngine, &engine)) {
                std::fprintf(stderr,
                             "mispsim: MISP_ENGINE wants ref, cache, or "
                             "superblock, got '%s'\n",
                             envEngine);
                return 2;
            }
            forceEngine = true;
        }
    }
    if (!forceEngine) {
        const char *env = std::getenv("MISP_NO_DECODE_CACHE");
        if (env && env[0] == '1') {
            engine = misp::cpu::Engine::Reference;
            forceEngine = true;
        }
    }

    setQuietLogging(!verbose);

    std::string path = findScenarioFile(scnArg, argv[0]);
    if (path.empty()) {
        std::fprintf(stderr, "mispsim: scenario '%s' not found\n",
                     scnArg.c_str());
        return 1;
    }

    SpecFile spec;
    std::string err;
    if (!SpecFile::parseFile(path, &spec, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }
    Scenario sc;
    if (!Scenario::fromSpec(spec, &sc, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }

    // The supervision flags act on forked workers; without --isolate
    // there is no worker to supervise, so reject the combination
    // instead of silently ignoring it.
    if (!isolate &&
        (!injectSpec.empty() || deadlineMs >= 0 || retries >= 0 ||
         backoffMs >= 0)) {
        std::fprintf(stderr,
                     "mispsim: --inject/--deadline/--retries/--backoff "
                     "require --isolate\n");
        return 2;
    }
    FaultPlan injected;
    if (!injectSpec.empty() &&
        !FaultPlan::parse(injectSpec, &injected, &err)) {
        std::fprintf(stderr, "mispsim: --inject: %s\n", err.c_str());
        return 2;
    }
    if (!onFailed.empty()) {
        if (onFailed == "fail")
            sc.report.onFailedPoints = FailedPointPolicy::Fail;
        else if (onFailed == "skip")
            sc.report.onFailedPoints = FailedPointPolicy::Skip;
        else if (onFailed == "require_all")
            sc.report.onFailedPoints = FailedPointPolicy::RequireAll;
        else {
            std::fprintf(stderr,
                         "mispsim: --on-failed: expected fail, skip, or "
                         "require_all, got '%s'\n",
                         onFailed.c_str());
            return 2;
        }
    }
    std::vector<ScenarioPoint> points;
    if (!sc.expandPoints(quick, &points, &err)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }

    if (dryRun) {
        std::printf("scenario %s: %zu point(s)\n", sc.name.c_str(),
                    points.size());
        for (const ScenarioPoint &pt : points) {
            std::printf("  %-10s %-18s competitors=%u",
                        pt.machine.name.c_str(),
                        pt.workload.name.c_str(), pt.competitors);
            std::string coords = pt.coordString();
            if (!coords.empty())
                std::printf("  [%s]", coords.c_str());
            std::printf("\n");
        }
        return 0;
    }

    if (!saveSnapshotDir.empty() && !fromSnapshotDir.empty()) {
        std::fprintf(stderr, "mispsim: --save-snapshot and "
                             "--from-snapshot are mutually exclusive\n");
        return 2;
    }
    if (!saveSnapshotDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(saveSnapshotDir, ec);
        if (ec) {
            std::fprintf(stderr, "mispsim: cannot create '%s': %s\n",
                         saveSnapshotDir.c_str(),
                         ec.message().c_str());
            return 1;
        }
    }

    ScenarioRunner::Options opts;
    opts.forceEngine = forceEngine;
    opts.engine = engine;
    opts.fullStats = fullStats;
    opts.jobs = jobs;
    opts.isolate = isolate;
    opts.deadlineMs = deadlineMs;
    opts.retries = retries;
    opts.backoffMs = backoffMs;
    opts.faults = injected;
    opts.snapshotSaveDir = saveSnapshotDir;
    opts.snapshotLoadDir = fromSnapshotDir;
    ScenarioRunner runner(opts);
    std::vector<PointResult> results =
        runner.runAll(sc, points, pointsOnly ? nullptr : &std::cerr);

    // One columnar frame per sweep: every renderer and the assert
    // evaluator below read the results through it.
    const harness::MetricFrame frame = buildMetricFrame(sc, results);

    if (pointsOnly) {
        writePoints(std::cout, frame);
    } else if (sc.report.mode == ReportMode::Events) {
        writeEventsTable(std::cout, sc, frame, markdown);
    } else {
        writeTable(std::cout, sc, frame, markdown);
    }

    if (!jsonPath.empty()) {
        std::ofstream os(jsonPath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         jsonPath.c_str());
            return 1;
        }
        writeJson(os, sc, quick, frame);
        std::fprintf(stderr, "mispsim: wrote %s\n", jsonPath.c_str());
    }

    if (!metricsPath.empty()) {
        std::ofstream os(metricsPath);
        if (!os) {
            std::fprintf(stderr, "mispsim: cannot write '%s'\n",
                         metricsPath.c_str());
            return 1;
        }
        writeMetricsJson(os, sc, quick, frame);
        std::fprintf(stderr, "mispsim: wrote %s\n", metricsPath.c_str());
    }

    int rc = 0;
    std::size_t failedPoints = 0;
    const bool degradeGracefully =
        sc.report.onFailedPoints == FailedPointPolicy::Skip;
    for (const PointResult &r : results) {
        if (r.run.ok())
            continue;
        std::string what;
        switch (r.run.status) {
          case harness::RunStatus::MaxTicksReached:
            what = "never finished (hit max_ticks)";
            break;
          case harness::RunStatus::SnapshotError:
            what = "snapshot error: " + r.run.note;
            break;
          case harness::RunStatus::WorkerCrashed:
            what = "worker crashed: " + r.run.note;
            break;
          case harness::RunStatus::WorkerTimeout:
            what = "worker timed out: " + r.run.note;
            break;
          case harness::RunStatus::Completed:
            what = "failed result validation";
            break;
        }
        if (r.run.attempts > 1)
            what += " [attempts=" + std::to_string(r.run.attempts) + "]";
        std::fprintf(stderr,
                     "mispsim: point machine=%s workload=%s "
                     "competitors=%u %s\n",
                     r.machine.c_str(), r.workload.c_str(),
                     r.competitors, what.c_str());
        // Infrastructure failures degrade instead of failing when the
        // policy says skip; simulation outcomes (max_ticks, invalid
        // results) are real findings and always fail the run.
        if (harness::runStatusIsInfraFailure(r.run.status) &&
            degradeGracefully)
            ++failedPoints;
        else
            rc = 1;
    }

    // [report] asserts guard paper claims from the spec itself; any
    // failing (or malformed) assert makes the run exit non-zero.
    std::vector<AssertFailure> failures;
    std::size_t skippedGroups = 0;
    if (!evaluateAsserts(sc, frame, &failures, &err, &skippedGroups)) {
        std::fprintf(stderr, "mispsim: %s\n", err.c_str());
        return 1;
    }
    for (const AssertFailure &f : failures) {
        std::fprintf(stderr, "mispsim: %s:%d: assert FAILED: %s (%s)\n",
                     sc.specPath.c_str(), f.line, f.text.c_str(),
                     f.detail.c_str());
        rc = 1;
    }
    if (skippedGroups > 0)
        std::fprintf(stderr,
                     "mispsim: %zu assert evaluation(s) skipped over "
                     "failed points\n",
                     skippedGroups);
    if (!sc.report.asserts.empty() && failures.empty())
        std::fprintf(stderr, "mispsim: %zu assert(s) passed\n",
                     sc.report.asserts.size());
    // Distinct code for "completed with failed points": everything
    // that ran passed, but the sweep is degraded (on_failed_points =
    // skip swallowed infrastructure failures).
    if (rc == 0 && failedPoints > 0) {
        std::fprintf(stderr,
                     "mispsim: completed with %zu failed point(s) "
                     "(on_failed_points=skip)\n",
                     failedPoints);
        rc = 4;
    }
    return rc;
}
