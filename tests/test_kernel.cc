/**
 * @file
 * Unit tests for the OS model: scheduling, syscalls, futexes, demand
 * paging, affinity. These drive the Kernel directly (no sequencers).
 */

#include <gtest/gtest.h>

#include "os/kernel.hh"
#include "sim/event_queue.hh"

using namespace misp;
using namespace misp::os;

namespace {

class KernelTest : public ::testing::Test, public KernelClient
{
  protected:
    KernelTest() : pmem(1 << 12), root("")
    {
        KernelConfig cfg;
        kernel = std::make_unique<Kernel>(eq, pmem, cfg, &root);
        kernel->setClient(this);
    }

    void cpuWake(int cpu) override { wakes.push_back(cpu); }

    Process *
    makeProcess(const char *name = "p")
    {
        Process *proc = kernel->createProcess(name);
        proc->addressSpace().defineRegion(0x40'0000,
                                          16 * mem::kPageSize, true,
                                          "mem");
        return proc;
    }

    EventQueue eq;
    mem::PhysicalMemory pmem;
    stats::StatGroup root;
    std::unique_ptr<Kernel> kernel;
    std::vector<int> wakes;
};

} // namespace

TEST_F(KernelTest, ThreadLifecycle)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 7);
    EXPECT_EQ(t->state(), ThreadState::Ready);
    EXPECT_EQ(t->context().regs[0], 7u);
    EXPECT_EQ(t->context().regs[2], 7u);

    OsThread *picked = kernel->pickNext(0);
    EXPECT_EQ(picked, t);
    EXPECT_EQ(t->state(), ThreadState::Running);
    EXPECT_EQ(t->cpu(), 0);
    EXPECT_EQ(kernel->current(0), t);
}

TEST_F(KernelTest, PickNextEmptyQueueIdles)
{
    kernel->addCpu();
    EXPECT_EQ(kernel->pickNext(0), nullptr);
}

TEST_F(KernelTest, ExitThreadFreesCpuAndPicksNext)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *a = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    OsThread *b = kernel->createThread(proc, 0x40'0000, 0x41'0000, 1);
    kernel->pickNext(0);
    KernelResult res = kernel->syscall(
        0, *a, static_cast<Word>(Sys::ExitThread), {0, 0, 0, 0});
    EXPECT_EQ(a->state(), ThreadState::Done);
    EXPECT_TRUE(res.reschedule);
    EXPECT_EQ(res.next, b);
    EXPECT_GT(res.priv, 0u);
}

TEST_F(KernelTest, JoinBlocksUntilTargetExits)
{
    kernel->addCpu();
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *worker = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    OsThread *joiner = kernel->createThread(proc, 0x40'0000, 0x42'0000, 0);
    kernel->pickNext(0); // worker
    kernel->pickNext(1); // joiner

    KernelResult res = kernel->syscall(
        1, *joiner, static_cast<Word>(Sys::ThreadJoin),
        {worker->tid(), 0, 0, 0});
    EXPECT_TRUE(res.reschedule);
    EXPECT_EQ(joiner->state(), ThreadState::Blocked);

    wakes.clear();
    KernelResult exitRes = kernel->syscall(
        0, *worker, static_cast<Word>(Sys::ExitThread), {0, 0, 0, 0});
    // The joiner was readied; the exiting CPU may have picked it up
    // immediately as its next thread.
    EXPECT_NE(joiner->state(), ThreadState::Blocked);
    EXPECT_TRUE(exitRes.next == joiner || !wakes.empty() ||
                joiner->state() == ThreadState::Ready);
}

TEST_F(KernelTest, JoinOfFinishedThreadReturnsImmediately)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *worker = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    OsThread *joiner = kernel->createThread(proc, 0x40'0000, 0x42'0000, 0);
    kernel->pickNext(0); // worker
    KernelResult exitRes = kernel->syscall(
        0, *worker, static_cast<Word>(Sys::ExitThread), {0, 0, 0, 0});
    ASSERT_EQ(exitRes.next, joiner); // picked up by the freed CPU
    KernelResult res = kernel->syscall(
        0, *joiner, static_cast<Word>(Sys::ThreadJoin),
        {worker->tid(), 0, 0, 0});
    EXPECT_FALSE(res.reschedule);
}

TEST_F(KernelTest, FutexWaitValueMismatchReturns)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->pickNext(0);
    proc->addressSpace().pokeWord(0x40'0100, 5, 8);
    KernelResult res = kernel->syscall(
        0, *t, static_cast<Word>(Sys::FutexWait), {0x40'0100, 4, 0, 0});
    EXPECT_FALSE(res.reschedule);
    EXPECT_EQ(res.retval, 1u);
    EXPECT_EQ(t->state(), ThreadState::Running);
}

TEST_F(KernelTest, FutexWaitWakeRoundTrip)
{
    kernel->addCpu();
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *sleeper = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    OsThread *waker = kernel->createThread(proc, 0x40'0000, 0x42'0000, 0);
    kernel->pickNext(0);
    kernel->pickNext(1);
    proc->addressSpace().pokeWord(0x40'0100, 0, 8);

    KernelResult res = kernel->syscall(
        0, *sleeper, static_cast<Word>(Sys::FutexWait),
        {0x40'0100, 0, 0, 0});
    EXPECT_TRUE(res.reschedule);
    EXPECT_EQ(sleeper->state(), ThreadState::Blocked);

    KernelResult wres = kernel->syscall(
        1, *waker, static_cast<Word>(Sys::FutexWake), {0x40'0100, 1, 0, 0});
    EXPECT_EQ(wres.retval, 1u);
    EXPECT_EQ(sleeper->state(), ThreadState::Ready);
}

TEST_F(KernelTest, FutexWakeWithNoWaiters)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->pickNext(0);
    KernelResult res = kernel->syscall(
        0, *t, static_cast<Word>(Sys::FutexWake), {0x40'0100, 5, 0, 0});
    EXPECT_EQ(res.retval, 0u);
}

TEST_F(KernelTest, SleepWakesAfterDuration)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->pickNext(0);
    KernelResult res = kernel->syscall(
        0, *t, static_cast<Word>(Sys::Sleep), {5000, 0, 0, 0});
    EXPECT_TRUE(res.reschedule);
    EXPECT_EQ(t->state(), ThreadState::Blocked);
    eq.run();
    EXPECT_EQ(t->state(), ThreadState::Ready);
    EXPECT_GE(eq.curTick(), 5000u);
}

TEST_F(KernelTest, PageFaultMapsPage)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->pickNext(0);
    EXPECT_FALSE(proc->addressSpace().mapped(0x40'2000));
    KernelResult res = kernel->pageFault(0, *t, 0x40'2000, true);
    EXPECT_FALSE(res.fatalFault);
    EXPECT_GT(res.priv, 0u);
    EXPECT_TRUE(proc->addressSpace().mapped(0x40'2000));
}

TEST_F(KernelTest, BadAddressIsFatalFault)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->pickNext(0);
    KernelResult res = kernel->pageFault(0, *t, 0xBAD0'0000, false);
    EXPECT_TRUE(res.fatalFault);
}

TEST_F(KernelTest, TimerPreemptsAfterQuantum)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *a = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    OsThread *b = kernel->createThread(proc, 0x40'0000, 0x42'0000, 0);
    kernel->pickNext(0);

    unsigned quantum = kernel->config().quantumTicks;
    for (unsigned i = 0; i + 1 < quantum; ++i) {
        KernelResult res = kernel->timerTick(0);
        EXPECT_FALSE(res.reschedule) << "tick " << i;
    }
    KernelResult res = kernel->timerTick(0);
    EXPECT_TRUE(res.reschedule);
    EXPECT_EQ(res.prev, a);
    EXPECT_EQ(res.next, b);
    EXPECT_EQ(a->state(), ThreadState::Ready);
}

TEST_F(KernelTest, NoPreemptionWhenAlone)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->pickNext(0);
    for (int i = 0; i < 10; ++i) {
        KernelResult res = kernel->timerTick(0);
        EXPECT_FALSE(res.reschedule);
    }
}

TEST_F(KernelTest, YieldRotatesReadyQueue)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *a = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    OsThread *b = kernel->createThread(proc, 0x40'0000, 0x42'0000, 0);
    kernel->pickNext(0);
    KernelResult res = kernel->syscall(
        0, *a, static_cast<Word>(Sys::Yield), {0, 0, 0, 0});
    EXPECT_TRUE(res.reschedule);
    EXPECT_EQ(res.next, b);
}

TEST_F(KernelTest, AffinityRestrictsPlacement)
{
    kernel->addCpu();
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    t->affinity = {1};
    EXPECT_EQ(kernel->pickNext(0), nullptr);
    EXPECT_EQ(kernel->pickNext(1), t);
}

TEST_F(KernelTest, ExitProcessReapsThreads)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *main = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->createThread(proc, 0x40'0000, 0x42'0000, 0); // queued
    kernel->pickNext(0);
    bool hooked = false;
    kernel->setProcessExitHook([&](Process *p) {
        hooked = p == proc;
    });
    kernel->syscall(0, *main, static_cast<Word>(Sys::ExitProcess),
                    {0, 0, 0, 0});
    EXPECT_TRUE(proc->exited);
    EXPECT_TRUE(proc->allThreadsDone());
    EXPECT_TRUE(hooked);
    EXPECT_FALSE(kernel->processAlive(proc));
}

TEST_F(KernelTest, WriteChargesPerByte)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->pickNext(0);
    KernelResult small = kernel->syscall(
        0, *t, static_cast<Word>(Sys::Write), {1, 0x40'0000, 10, 0});
    KernelResult large = kernel->syscall(
        0, *t, static_cast<Word>(Sys::Write), {1, 0x40'0000, 1000, 0});
    EXPECT_GT(large.priv, small.priv);
    EXPECT_EQ(small.retval, 10u);
}

TEST_F(KernelTest, DeviceIrqGapIsPositiveAndVaries)
{
    Tick a = kernel->nextDeviceIrqGap();
    Tick b = kernel->nextDeviceIrqGap();
    EXPECT_GT(a, 0u);
    EXPECT_GT(b, 0u);
    // Exponentially distributed: very unlikely to repeat exactly.
    EXPECT_NE(a, b);
}

TEST_F(KernelTest, GetTidReturnsCallerTid)
{
    kernel->addCpu();
    Process *proc = makeProcess();
    OsThread *t = kernel->createThread(proc, 0x40'0000, 0x41'0000, 0);
    kernel->pickNext(0);
    KernelResult res = kernel->syscall(
        0, *t, static_cast<Word>(Sys::GetTid), {0, 0, 0, 0});
    EXPECT_EQ(res.retval, t->tid());
}
