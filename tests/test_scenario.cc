/**
 * @file
 * Scenario-driver tests: the `.scn` spec parser (round-trip and
 * diagnostics), the scenario model (sweep expansion, quick overrides),
 * the workload registry (lookup, selectors, parameter setting), the
 * stats JSON emitter, and — the load-bearing property — equivalence
 * between ScenarioRunner and the hand-rolled experiment code the
 * figure benches used before the driver existed.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/runner.hh"
#include "driver/scenario.hh"
#include "driver/spec.hh"
#include "harness/experiment.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "workloads/workload.hh"

using namespace misp;
using namespace misp::driver;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuietLogging(true); }
};

const ::testing::Environment *const kQuietEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

SpecFile
mustParse(const std::string &text)
{
    SpecFile spec;
    std::string err;
    EXPECT_TRUE(SpecFile::parse(text, "<test>", &spec, &err)) << err;
    return spec;
}

Scenario
mustScenario(const std::string &text)
{
    Scenario sc;
    std::string err;
    EXPECT_TRUE(Scenario::fromSpec(mustParse(text), &sc, &err)) << err;
    return sc;
}

} // namespace

// ---------------------------------------------------------------------
// Spec parser
// ---------------------------------------------------------------------

TEST(SpecParse, SectionsEntriesAndComments)
{
    SpecFile spec = mustParse("# leading comment\n"
                              "[scenario]\n"
                              "name = demo   ; trailing comment\n"
                              "\n"
                              "[machine 1x4+4]\n"
                              "processors = 3,0,0,0,0  # paper Figure 6\n"
                              "backend = shred\n");
    ASSERT_EQ(spec.sections.size(), 2u);
    EXPECT_EQ(spec.sections[0].type, "scenario");
    EXPECT_EQ(spec.sections[0].name, "");
    EXPECT_EQ(spec.sections[0].get("name"), "demo");
    EXPECT_EQ(spec.sections[1].type, "machine");
    EXPECT_EQ(spec.sections[1].name, "1x4+4");
    EXPECT_EQ(spec.sections[1].get("processors"), "3,0,0,0,0");
    EXPECT_EQ(spec.sections[1].find("processors")->line, 6);
    EXPECT_FALSE(spec.sections[1].has("missing"));
}

TEST(SpecParse, RoundTrip)
{
    const std::string text = "[scenario]\n"
                             "name = rt\n"
                             "\n"
                             "[machine a]\n"
                             "ams = 7\n"
                             "\n"
                             "[sweep]\n"
                             "competitors = 0..2\n";
    SpecFile one = mustParse(text);
    SpecFile two = mustParse(one.serialize());
    ASSERT_EQ(two.sections.size(), one.sections.size());
    for (std::size_t i = 0; i < one.sections.size(); ++i) {
        EXPECT_EQ(two.sections[i].type, one.sections[i].type);
        EXPECT_EQ(two.sections[i].name, one.sections[i].name);
        ASSERT_EQ(two.sections[i].entries.size(),
                  one.sections[i].entries.size());
        for (std::size_t j = 0; j < one.sections[i].entries.size(); ++j) {
            EXPECT_EQ(two.sections[i].entries[j].key,
                      one.sections[i].entries[j].key);
            EXPECT_EQ(two.sections[i].entries[j].value,
                      one.sections[i].entries[j].value);
        }
    }
    // Serialization is a fixed point.
    EXPECT_EQ(two.serialize(), one.serialize());
}

TEST(SpecParse, DiagnosticsCarryLineNumbers)
{
    SpecFile spec;
    std::string err;

    EXPECT_FALSE(SpecFile::parse("[machine\n", "f.scn", &spec, &err));
    EXPECT_EQ(err, "f.scn:1: section header missing ']'");

    EXPECT_FALSE(
        SpecFile::parse("[m]\njust words\n", "f.scn", &spec, &err));
    EXPECT_NE(err.find("f.scn:2:"), std::string::npos);
    EXPECT_NE(err.find("key = value"), std::string::npos);

    EXPECT_FALSE(SpecFile::parse("key = 1\n", "f.scn", &spec, &err));
    EXPECT_NE(err.find("before any [section]"), std::string::npos);

    EXPECT_FALSE(
        SpecFile::parse("[m]\na = 1\na = 2\n", "f.scn", &spec, &err));
    EXPECT_EQ(err, "f.scn:3: duplicate key 'a' in section [m]");

    EXPECT_FALSE(SpecFile::parse("[m]\n = 1\n", "f.scn", &spec, &err));
    EXPECT_NE(err.find("empty key"), std::string::npos);

    EXPECT_FALSE(SpecFile::parseFile("/nonexistent/x.scn", &spec, &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(SpecParse, ValueHelpers)
{
    EXPECT_EQ(splitList(" a, b ,, c "),
              (std::vector<std::string>{"a", "b", "c"}));

    std::vector<std::string> vals;
    std::string err;
    ASSERT_TRUE(expandValues("0..2, 7, 9..10", &vals, &err));
    EXPECT_EQ(vals,
              (std::vector<std::string>{"0", "1", "2", "7", "9", "10"}));

    EXPECT_FALSE(expandValues("5..x", &vals, &err));
    EXPECT_NE(err.find("malformed span"), std::string::npos);
    EXPECT_FALSE(expandValues("4..2", &vals, &err));
    EXPECT_NE(err.find("inverted span"), std::string::npos);

    std::uint64_t u = 0;
    EXPECT_TRUE(parseU64("0x100", &u));
    EXPECT_EQ(u, 0x100u);
    EXPECT_FALSE(parseU64("12kb", &u));
    // A leading '-' must not strtoull-wrap to a huge positive.
    EXPECT_FALSE(parseU64("-1", &u));
    bool b = false;
    EXPECT_TRUE(parseBool("on", &b));
    EXPECT_TRUE(b);
    EXPECT_FALSE(parseBool("maybe", &b));
}

// ---------------------------------------------------------------------
// Scenario model
// ---------------------------------------------------------------------

TEST(Scenario, MachineKnobsMapToSystemConfig)
{
    Scenario sc = mustScenario("[machine m]\n"
                               "processors = 3,0\n"
                               "backend = os\n"
                               "decode_cache = off\n"
                               "signal_cycles = 500\n"
                               "slice_limit = 8\n"
                               "serialization = speculative_monitor\n"
                               "pin_min_ams = 3\n"
                               "ideal_placement = true\n"
                               "[workload]\n"
                               "name = dense_mvm\n");
    ASSERT_EQ(sc.machines.size(), 1u);
    const MachineSpec &m = sc.machines[0];
    EXPECT_EQ(m.backend, rt::Backend::OsThread);
    EXPECT_EQ(m.pinMinAms, 3u);
    EXPECT_TRUE(m.idealPlacement);
    arch::SystemConfig sys = m.toSystemConfig();
    EXPECT_EQ(sys.amsPerProcessor, (std::vector<unsigned>{3, 0}));
    EXPECT_EQ(sys.misp.engine, cpu::Engine::Reference);
    EXPECT_EQ(sys.misp.signalCycles, 500u);
    EXPECT_EQ(sys.misp.sliceLimit, 8u);
    EXPECT_EQ(sys.misp.serialization,
              arch::SerializationPolicy::SpeculativeMonitor);
}

TEST(Scenario, ValidationDiagnostics)
{
    Scenario sc;
    std::string err;

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machina]\nams = 7\n"), &sc, &err));
    EXPECT_NE(err.find("unknown section [machina]"), std::string::npos);

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine m]\nwheels = 4\n"), &sc, &err));
    EXPECT_EQ(err, "<test>:2: unknown machine knob 'wheels'");

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine m]\nams = 7\n[workload]\nname = nope\n"),
        &sc, &err));
    EXPECT_NE(err.find("unknown workload 'nope'"), std::string::npos);

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine m]\nams = 7\n"), &sc, &err));
    EXPECT_NE(err.find("no [workload] section"), std::string::npos);

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[workload]\nname = gauss\n"), &sc, &err));
    EXPECT_NE(err.find("no [machine] section"), std::string::npos);

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine m]\nams = 7\n[workload]\nname = gauss\n"
                  "[report]\nbaseline_machine = other\n"),
        &sc, &err));
    EXPECT_NE(err.find("baseline_machine"), std::string::npos);

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine m]\nams = 7\n[machine m]\nams = 3\n"
                  "[workload]\nname = gauss\n"),
        &sc, &err));
    EXPECT_NE(err.find("duplicate machine name"), std::string::npos);

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine m]\nams = 7\n[workload]\nname = gauss\n"
                  "[sweep]\nwheels = 1..4\n"),
        &sc, &err));
    EXPECT_NE(err.find("unknown sweep axis 'wheels'"), std::string::npos);

    // List-valued topology knobs must not be comma-split into scalar
    // axis values.
    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine m]\nams = 7\n[workload]\nname = gauss\n"
                  "[sweep]\nmachine.processors = 3,0,0\n"),
        &sc, &err));
    EXPECT_NE(err.find("machine.processors cannot be swept"),
              std::string::npos);
}

TEST(Scenario, SweepExpansionOrderAndOverrides)
{
    Scenario sc = mustScenario("[machine a]\nams = 1\n"
                               "[machine b]\nams = 2\n"
                               "[workload]\nname = dense_mvm\n"
                               "[sweep]\n"
                               "workload.name = suite:specomp\n"
                               "competitors = 0..1\n"
                               "[quick]\n"
                               "workload.name = gauss\n"
                               "machine.decode_cache = off\n");

    std::vector<ScenarioPoint> pts;
    std::string err;
    ASSERT_TRUE(sc.expandPoints(false, &pts, &err)) << err;
    // 5 SPEComp workloads x 2 competitor values x 2 machines.
    ASSERT_EQ(pts.size(), 20u);
    // First axis varies slowest; machines vary fastest.
    EXPECT_EQ(pts[0].workload.name, "swim");
    EXPECT_EQ(pts[0].competitors, 0u);
    EXPECT_EQ(pts[0].machine.name, "a");
    EXPECT_EQ(pts[1].machine.name, "b");
    EXPECT_EQ(pts[2].competitors, 1u);
    EXPECT_EQ(pts[4].workload.name, "applu");
    EXPECT_EQ(pts[0].machine.engine, cpu::Engine::Superblock);
    EXPECT_EQ(pts[0].coordString(), "workload.name=swim competitors=0");

    // Quick mode: workload axis replaced, machine.decode_cache knob
    // appended as a single-value axis.
    ASSERT_TRUE(sc.expandPoints(true, &pts, &err)) << err;
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_EQ(pts[0].workload.name, "gauss");
    EXPECT_EQ(pts[0].machine.engine, cpu::Engine::Reference);
}

TEST(Scenario, SweepValueDiagnostics)
{
    Scenario sc = mustScenario("[machine a]\nams = 1\n"
                               "[workload]\nname = dense_mvm\n"
                               "[sweep]\nworkload.name = suite:nope\n");
    std::vector<ScenarioPoint> pts;
    std::string err;
    EXPECT_FALSE(sc.expandPoints(false, &pts, &err));
    EXPECT_EQ(err, "<test>:6: unknown workload suite 'nope'");

    Scenario sc2 = mustScenario("[machine a]\nams = 1\n"
                                "[workload]\nname = dense_mvm\n"
                                "[sweep]\nmachine.slice_limit = x\n");
    EXPECT_FALSE(sc2.expandPoints(false, &pts, &err));
    EXPECT_NE(err.find("slice_limit"), std::string::npos);
}

TEST(Scenario, SupervisionAndFaultSections)
{
    Scenario sc = mustScenario(
        "[machine a]\nams = 1\n[workload]\nname = dense_mvm\n"
        "[run]\npoint_deadline_ms = 5000\nretries = 2\n"
        "retry_backoff_ms = 25\n"
        "[faults]\nseed = 11\ninject = crash@0\ninject = hang@p0.5x1\n"
        "[report]\non_failed_points = skip\n");
    EXPECT_EQ(sc.pointDeadlineMs, 5000u);
    EXPECT_EQ(sc.retries, 2u);
    EXPECT_EQ(sc.retryBackoffMs, 25u);
    EXPECT_TRUE(sc.faults.seedSet);
    EXPECT_EQ(sc.faults.seed, 11u);
    ASSERT_EQ(sc.faults.rules.size(), 2u);
    EXPECT_EQ(sc.faults.toString(), "seed=11;crash@0;hang@p0.5x1");
    EXPECT_EQ(sc.report.onFailedPoints, FailedPointPolicy::Skip);

    // Defaults: no deadline, no retries, fail-on-failed-points.
    Scenario plain = mustScenario(
        "[machine a]\nams = 1\n[workload]\nname = dense_mvm\n");
    EXPECT_EQ(plain.pointDeadlineMs, 0u);
    EXPECT_EQ(plain.retries, 0u);
    EXPECT_TRUE(plain.faults.empty());
    EXPECT_EQ(plain.report.onFailedPoints, FailedPointPolicy::Fail);

    // Malformed values diagnose with the spec line.
    Scenario bad;
    std::string err;
    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine a]\nams = 1\n[workload]\nname = dense_mvm\n"
                  "[faults]\ninject = explode@0\n"),
        &bad, &err));
    EXPECT_NE(err.find("unknown fault kind"), std::string::npos) << err;

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine a]\nams = 1\n[workload]\nname = dense_mvm\n"
                  "[report]\non_failed_points = shrug\n"),
        &bad, &err));
    EXPECT_NE(err.find("on_failed_points"), std::string::npos) << err;

    EXPECT_FALSE(Scenario::fromSpec(
        mustParse("[machine a]\nams = 1\n[workload]\nname = dense_mvm\n"
                  "[run]\npoint_deadline_ms = soon\n"),
        &bad, &err));
    EXPECT_NE(err.find("point_deadline_ms"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------

TEST(Registry, LookupCoversFigureAndUtilWorkloads)
{
    EXPECT_NE(wl::findWorkload("dense_mvm"), nullptr);
    EXPECT_NE(wl::findWorkload("Raytracer"), nullptr);
    EXPECT_NE(wl::findWorkload("spinner"), nullptr);
    EXPECT_EQ(wl::findWorkload("no_such_workload"), nullptr);

    // The spinner stays out of the figure suite.
    for (const wl::WorkloadInfo &info : wl::allWorkloads())
        EXPECT_NE(info.name, "spinner");
}

TEST(Registry, Selectors)
{
    std::string err;
    EXPECT_EQ(wl::selectWorkloads("all").size(),
              wl::allWorkloads().size());
    EXPECT_EQ(wl::selectWorkloads("suite:rms").size(), 11u);
    EXPECT_EQ(wl::selectWorkloads("suite:specomp").size(), 5u);
    EXPECT_EQ(wl::selectWorkloads("gauss").size(), 1u);
    EXPECT_TRUE(wl::selectWorkloads("suite:nope", &err).empty());
    EXPECT_NE(err.find("unknown workload suite"), std::string::npos);
    EXPECT_TRUE(wl::selectWorkloads("bogus", &err).empty());
    EXPECT_NE(err.find("unknown workload"), std::string::npos);
}

TEST(Registry, SetWorkloadParam)
{
    wl::WorkloadParams p;
    std::string err;
    EXPECT_TRUE(wl::setWorkloadParam(p, "workers", "3", &err));
    EXPECT_TRUE(wl::setWorkloadParam(p, "scale", "2", &err));
    EXPECT_TRUE(wl::setWorkloadParam(p, "prefault", "true", &err));
    EXPECT_TRUE(wl::setWorkloadParam(p, "seed", "0x2a", &err));
    EXPECT_EQ(p.workers, 3u);
    EXPECT_EQ(p.scale, 2u);
    EXPECT_TRUE(p.prefault);
    EXPECT_EQ(p.seed, 42u);

    EXPECT_FALSE(wl::setWorkloadParam(p, "workers", "many", &err));
    EXPECT_NE(err.find("expected an integer"), std::string::npos);
    EXPECT_FALSE(wl::setWorkloadParam(p, "workers", "-1", &err));
    EXPECT_EQ(p.workers, 3u);
    EXPECT_FALSE(wl::setWorkloadParam(p, "color", "red", &err));
    EXPECT_NE(err.find("unknown workload parameter"), std::string::npos);
}

// ---------------------------------------------------------------------
// Stats JSON emitter
// ---------------------------------------------------------------------

TEST(StatsJson, ScalarVectorAndNesting)
{
    stats::StatGroup root("");
    stats::StatGroup child("cpu0", &root);
    stats::Scalar s(&root, "ticks", "total ticks");
    stats::Vector v(&child, "events", "per-slot", 2);
    s += 42;
    v[0] = 1;
    v[1] = 2;

    std::ostringstream os;
    root.dumpJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"ticks\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"cpu0\""), std::string::npos);
    EXPECT_NE(json.find("\"[0]\": 1"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

// ---------------------------------------------------------------------
// Runner equivalence with the hand-rolled figure-bench code paths
// ---------------------------------------------------------------------

namespace {

/** The pre-driver fig4_speedup run: build workload, instantiate the
 *  machine + backend, load unpinned, run to completion. */
Tick
handRolledFig4Run(const arch::SystemConfig &sys, rt::Backend backend,
                  const wl::WorkloadInfo &info,
                  const wl::WorkloadParams &params)
{
    wl::Workload w = info.build(params);
    harness::Experiment exp(sys, backend);
    harness::LoadedProcess proc = exp.load(w.app);
    return exp.runToCompletion(proc.process).ticks;
}

/** The pre-driver fig7 runRaytracerUnder: pin the shredded target to
 *  processors with enough AMSs, spinners to the rest when ideal. */
Tick
handRolledFig7Run(const std::vector<unsigned> &ams, unsigned shredProcAms,
                  bool ideal, unsigned competitors,
                  const wl::WorkloadParams &params)
{
    wl::Workload w = wl::buildRaytracer(params);
    arch::SystemConfig sys = arch::SystemConfig::mp(ams);
    harness::Experiment exp(sys, rt::Backend::Shred);

    std::vector<int> shredAffinity;
    std::vector<int> otherCpus;
    for (unsigned i = 0; i < exp.system().numProcessors(); ++i) {
        int cpu = exp.system().processor(i).cpuId();
        if (exp.system().processor(i).numAms() >= shredProcAms)
            shredAffinity.push_back(cpu);
        else
            otherCpus.push_back(cpu);
    }
    auto rtProc = exp.load(w.app, shredAffinity);

    wl::WorkloadParams spinParams;
    for (unsigned c = 0; c < competitors; ++c) {
        std::vector<int> affinity;
        if (ideal && !otherCpus.empty())
            affinity = otherCpus;
        exp.load(wl::buildSpinner(spinParams).app, affinity);
    }
    return exp.runToCompletion(rtProc.process).ticks;
}

std::vector<PointResult>
runScenarioText(const std::string &text, bool quick = false)
{
    Scenario sc = mustScenario(text);
    std::vector<ScenarioPoint> pts;
    std::string err;
    EXPECT_TRUE(sc.expandPoints(quick, &pts, &err)) << err;
    ScenarioRunner::Options opts;
    opts.hostLines = false;
    return ScenarioRunner(opts).runAll(sc, pts);
}

} // namespace

TEST(RunnerEquivalence, Fig4StyleMachinesMatchHandRolledRuns)
{
    wl::WorkloadParams params;
    params.workers = 7;
    const wl::WorkloadInfo *info = wl::findWorkload("dense_mvm");
    ASSERT_NE(info, nullptr);

    Tick oneP = handRolledFig4Run(arch::SystemConfig::mp({0}),
                                  rt::Backend::OsThread, *info, params);
    Tick misp = handRolledFig4Run(arch::SystemConfig::uniprocessor(7),
                                  rt::Backend::Shred, *info, params);

    std::vector<PointResult> results =
        runScenarioText("[machine 1p]\nprocessors = 0\nbackend = os\n"
                        "[machine misp]\nprocessors = 7\nbackend = shred\n"
                        "[workload]\nname = dense_mvm\nworkers = 7\n");
    ASSERT_EQ(results.size(), 2u);
    const PointResult *r1p = findResult(results, "1p", "dense_mvm", 0);
    const PointResult *rMisp = findResult(results, "misp", "dense_mvm", 0);
    ASSERT_NE(r1p, nullptr);
    ASSERT_NE(rMisp, nullptr);

    EXPECT_EQ(r1p->run.ticks, oneP);
    EXPECT_EQ(rMisp->run.ticks, misp);
    EXPECT_TRUE(r1p->run.valid);
    EXPECT_TRUE(rMisp->run.valid);
    // The MISP machine multi-shreds; the speedup must be real.
    EXPECT_LT(rMisp->run.ticks, r1p->run.ticks);
}

TEST(RunnerEquivalence, Fig7StylePinnedRunMatchesHandRolled)
{
    wl::WorkloadParams params;
    params.workers = 3;

    Tick unloaded = handRolledFig7Run({1, 0}, 1, true, 0, params);
    Tick loaded = handRolledFig7Run({1, 0}, 1, true, 1, params);

    std::vector<PointResult> results = runScenarioText(
        "[machine mp]\nprocessors = 1,0\npin_min_ams = 1\n"
        "ideal_placement = true\n"
        "[workload]\nname = Raytracer\nworkers = 3\n"
        "[sweep]\ncompetitors = 0..1\n");
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].competitors, 0u);
    EXPECT_EQ(results[0].run.ticks, unloaded);
    EXPECT_EQ(results[1].competitors, 1u);
    EXPECT_EQ(results[1].run.ticks, loaded);
    // Ideal placement keeps the competitor off the MISP CPU: the
    // loaded run cannot be much slower than the unloaded one.
    EXPECT_LT(results[1].run.ticks, unloaded + unloaded / 4);
}

TEST(RunnerEquivalence, EveryEngineIsBitIdentical)
{
    const std::string text =
        "[machine misp]\nams = 3\n"
        "[workload]\nname = dense_mvm\nworkers = 3\n";
    // Default leg: the machine's default engine (superblock).
    std::vector<PointResult> base = runScenarioText(text);

    Scenario sc = mustScenario(text);
    std::vector<ScenarioPoint> pts;
    std::string err;
    ASSERT_TRUE(sc.expandPoints(false, &pts, &err));
    for (cpu::Engine engine :
         {cpu::Engine::Reference, cpu::Engine::Cache}) {
        ScenarioRunner::Options opts;
        opts.hostLines = false;
        opts.forceEngine = true;
        opts.engine = engine;
        std::vector<PointResult> leg =
            ScenarioRunner(opts).runAll(sc, pts);

        ASSERT_EQ(base.size(), leg.size());
        EXPECT_EQ(base[0].run.ticks, leg[0].run.ticks)
            << cpu::engineName(engine);
        EXPECT_EQ(base[0].run.instsRetired, leg[0].run.instsRetired)
            << cpu::engineName(engine);
        EXPECT_EQ(base[0].run.events.omsSyscalls,
                  leg[0].run.events.omsSyscalls);
        EXPECT_EQ(base[0].run.events.serializations,
                  leg[0].run.events.serializations);
    }
}

// ---------------------------------------------------------------------
// Emitters
// ---------------------------------------------------------------------

TEST(Emitters, JsonTableAndPoints)
{
    Scenario sc = mustScenario(
        "[scenario]\nname = emit\ntitle = Emitter test\n"
        "[machine a]\nams = 1\n[machine b]\nams = 3\n"
        "[workload]\nname = dense_mvm\nworkers = 3\n"
        "[report]\nbaseline_machine = a\n");
    std::vector<ScenarioPoint> pts;
    std::string err;
    ASSERT_TRUE(sc.expandPoints(false, &pts, &err)) << err;
    ScenarioRunner::Options opts;
    opts.hostLines = false;
    std::vector<PointResult> results = ScenarioRunner(opts).runAll(sc, pts);
    ASSERT_EQ(results.size(), 2u);

    const harness::MetricFrame frame = buildMetricFrame(sc, results);

    std::ostringstream jsonOs;
    writeJson(jsonOs, sc, false, frame);
    const std::string json = jsonOs.str();
    EXPECT_NE(json.find("\"scenario\": \"emit\""), std::string::npos);
    EXPECT_NE(json.find("\"ticks\": "), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    std::ostringstream table;
    writeTable(table, sc, frame, /*markdown=*/false);
    EXPECT_NE(table.str().find("speedup_vs_a"), std::string::npos);

    std::ostringstream md;
    writeTable(md, sc, frame, /*markdown=*/true);
    EXPECT_NE(md.str().find("| machine |"), std::string::npos);
    EXPECT_NE(md.str().find("| --- |"), std::string::npos);

    std::ostringstream pl;
    writePoints(pl, frame);
    EXPECT_NE(pl.str().find("machine=a workload=dense_mvm competitors=0 "
                            "coords=- ticks="),
              std::string::npos);

    // The a-machine row's speedup against itself is exactly 1.000.
    EXPECT_NE(table.str().find("1.000"), std::string::npos);
}
