/**
 * @file
 * Unit tests for the statistics package and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/random.hh"
#include "sim/stats.hh"

using namespace misp;
using namespace misp::stats;

TEST(Stats, ScalarAccumulates)
{
    StatGroup root("root");
    Scalar s(&root, "count", "a counter");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 10;
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, VectorIndexesAndTotals)
{
    StatGroup root("root");
    Vector v(&root, "v", "per-thing", 4);
    v[0] = 1;
    v[2] = 5;
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_DOUBLE_EQ(v.at(2), 5.0);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_THROW(v[7], SimError);
}

TEST(Stats, DistributionMoments)
{
    StatGroup root("root");
    Distribution d(&root, "d", "samples");
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(x);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 9.0);
    EXPECT_NEAR(d.variance(), 4.571428, 1e-5);
}

TEST(Stats, FormulaEvaluatesAtReadTime)
{
    StatGroup root("root");
    Scalar hits(&root, "hits", "");
    Scalar misses(&root, "misses", "");
    Formula rate(&root, "rate", "hit rate", [&] {
        double total = hits.value() + misses.value();
        return total > 0 ? hits.value() / total : 0.0;
    });
    EXPECT_DOUBLE_EQ(rate.value(), 0.0);
    hits += 3;
    misses += 1;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, GroupPathsAndLookup)
{
    StatGroup root("");
    StatGroup cpu("cpu0", &root);
    StatGroup tlb("tlb", &cpu);
    Scalar hits(&tlb, "hits", "");
    hits += 42;
    EXPECT_EQ(tlb.path(), "cpu0.tlb");
    EXPECT_DOUBLE_EQ(root.lookupValue("cpu0.tlb.hits"), 42.0);
    EXPECT_EQ(root.find("cpu0.tlb.misses"), nullptr);
    EXPECT_EQ(root.find("nope.hits"), nullptr);
}

TEST(Stats, DumpContainsAllStats)
{
    StatGroup root("");
    StatGroup cpu("cpu0", &root);
    Scalar insts(&cpu, "insts", "instructions");
    insts += 7;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("cpu0.insts 7"), std::string::npos);
    EXPECT_NE(os.str().find("# instructions"), std::string::npos);

    std::ostringstream csv;
    root.dumpCsv(csv);
    EXPECT_NE(csv.str().find("cpu0.insts,7"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("");
    StatGroup child("c", &root);
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ReseedReproduces)
{
    Rng rng(9);
    std::uint64_t first = rng.next();
    rng.next();
    rng.reseed(9);
    EXPECT_EQ(rng.next(), first);
}
