/**
 * @file
 * Tests for the two threading runtimes behind the stub-library ABI:
 * ShredLib (M:N gang scheduling, user-level sync) and the OS-thread
 * backend (kernel threads, futex blocking) — exercised through guest
 * programs that use the stubs the way workloads do.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "shredlib/stub_library.hh"

using namespace misp;

namespace {

/** Stub entry addresses (fixed-slot ABI). */
struct Stubs {
    isa::Program prog = rt::buildStubLibrary(rt::Backend::Shred);
    VAddr
    operator[](const char *name) const
    {
        return const_cast<isa::Program &>(prog).symbol(name);
    }
};

const Stubs &
stubs()
{
    static Stubs s;
    return s;
}

harness::GuestApp
appFromAsm(const std::string &name, std::string src)
{
    // Make stub addresses available as decimal literals.
    auto sub = [&](const std::string &key, VAddr value) {
        std::string token = "@" + key;
        std::size_t pos;
        while ((pos = src.find(token)) != std::string::npos)
            src.replace(pos, token.size(), std::to_string(value));
    };
    for (const char *sym :
         {"rt_init", "shred_create", "join_all", "yield", "shred_self",
          "mutex_lock", "mutex_unlock", "barrier_wait", "sem_wait",
          "sem_post", "cond_wait", "cond_signal", "cond_broadcast",
          "event_wait", "event_set", "malloc", "prefault",
          "exit_process"}) {
        sub(sym, stubs()[sym]);
    }
    harness::GuestApp app;
    app.name = name;
    app.program = isa::assemble(src, mem::kCodeBase);
    harness::DataRegion data;
    data.addr = 0x0800'0000;
    data.size = 64 * mem::kPageSize;
    app.data.push_back(data);
    return app;
}

struct Ran {
    Tick ticks;
    os::Process *process;
    std::unique_ptr<harness::Experiment> exp;
    Word
    word(VAddr addr)
    {
        return process->addressSpace().peekWord(addr, 8);
    }
};

Ran
runOn(rt::Backend backend, const harness::GuestApp &app,
      unsigned numAms = 3)
{
    Ran r;
    arch::SystemConfig cfg =
        backend == rt::Backend::Shred
            ? arch::SystemConfig::uniprocessor(numAms)
            : arch::SystemConfig::mp({0, 0, 0, 0});
    r.exp = std::make_unique<harness::Experiment>(cfg, backend);
    auto loaded = r.exp->load(app);
    r.process = loaded.process;
    r.ticks = r.exp->runToCompletion(loaded.process, 50'000'000'000ull).ticks;
    return r;
}

/** Both backends must run the program to the same result. */
void
checkBothBackends(const harness::GuestApp &app, VAddr resultAddr,
                  Word expected)
{
    for (rt::Backend backend :
         {rt::Backend::Shred, rt::Backend::OsThread}) {
        SCOPED_TRACE(rt::backendName(backend));
        Ran r = runOn(backend, app);
        ASSERT_GT(r.ticks, 0u);
        EXPECT_EQ(r.word(resultAddr), expected);
    }
}

} // namespace

TEST(Runtimes, CreateAndJoinCollectsAllWork)
{
    // 5 workers each add (index+1) into their slot; total checked.
    auto app = appFromAsm("createjoin", R"(
        main:
            call @rt_init
            movi r4, 0
        spawn:
            movi r0, worker
            mov r1, r4
            call @shred_create
            addi r4, r4, 1
            cmpi r4, 5
            jcc.lt spawn
            call @join_all
            ; reduce slots
            movi r4, 0
            movi r6, 0
        reduce:
            shli r5, r4, 3
            addi r5, r5, 0x8000000
            ld8 r7, [r5]
            add r6, r6, r7
            addi r4, r4, 1
            cmpi r4, 5
            jcc.lt reduce
            movi r5, 0x8000100
            st8 [r5], r6
            movi r0, 0
            call @exit_process
        worker:
            mov r4, r0          ; index
            addi r5, r4, 1
            shli r6, r4, 3
            addi r6, r6, 0x8000000
            st8 [r6], r5
            compute 5000
            ret
    )");
    checkBothBackends(app, 0x0800'0100, 1 + 2 + 3 + 4 + 5);
}

TEST(Runtimes, MutexProtectsSharedCounter)
{
    // 6 workers increment a shared counter 200 times under a mutex.
    auto app = appFromAsm("mutexcount", R"(
        main:
            call @rt_init
            movi r4, 0
        spawn:
            movi r0, worker
            mov r1, r4
            call @shred_create
            addi r4, r4, 1
            cmpi r4, 6
            jcc.lt spawn
            call @join_all
            movi r0, 0
            call @exit_process
        worker:
            movi r14, 0         ; iterations
        loop:
            movi r0, 0x8000000  ; mutex word
            call @mutex_lock
            ; counter++ under the lock (plain, unlocked accesses)
            movi r4, 0x8000100
            ld8 r5, [r4]
            addi r5, r5, 1
            compute 120
            st8 [r4], r5
            movi r0, 0x8000000
            call @mutex_unlock
            addi r14, r14, 1
            cmpi r14, 200
            jcc.lt loop
            ret
    )");
    checkBothBackends(app, 0x0800'0100, 6 * 200);
}

TEST(Runtimes, BarrierSynchronizesPhases)
{
    // Phase 1: each worker writes its slot. Barrier. Phase 2: each
    // worker checks the *next* worker's slot was written, accumulating
    // into a success counter (atomic add).
    auto app = appFromAsm("barrier", R"(
        main:
            call @rt_init
            movi r4, 0
        spawn:
            movi r0, worker
            mov r1, r4
            call @shred_create
            addi r4, r4, 1
            cmpi r4, 4
            jcc.lt spawn
            call @join_all
            movi r0, 0
            call @exit_process
        worker:
            mov r14, r0          ; my index
            ; phase 1: slot[i] = i + 7
            shli r4, r14, 3
            addi r4, r4, 0x8000000
            addi r5, r14, 7
            st8 [r4], r5
            compute 3000
            ; barrier(4)
            movi r0, 0x8000200
            movi r1, 4
            call @barrier_wait
            ; phase 2: check slot[(i+1) % 4] == (i+1)%4 + 7
            addi r4, r14, 1
            andi r4, r4, 3
            shli r5, r4, 3
            addi r5, r5, 0x8000000
            ld8 r6, [r5]
            addi r7, r4, 7
            cmp r6, r7
            jcc.ne bad
            movi r4, 0x8000300
            movi r5, 1
            fetchadd r6, [r4], r5
        bad:
            ret
    )");
    checkBothBackends(app, 0x0800'0300, 4);
}

TEST(Runtimes, SemaphoreLimitsConcurrency)
{
    // Counting semaphore initialized to 2 (via a plain store before
    // first use); 4 workers pass through; a gauge counts concurrent
    // holders and its max must stay <= 2.
    auto app = appFromAsm("sem", R"(
        main:
            call @rt_init
            movi r4, 0x8000000  ; sem word
            movi r5, 2
            st8 [r4], r5
            movi r4, 0
        spawn:
            movi r0, worker
            mov r1, r4
            call @shred_create
            addi r4, r4, 1
            cmpi r4, 4
            jcc.lt spawn
            call @join_all
            movi r0, 0
            call @exit_process
        worker:
            movi r0, 0x8000000
            call @sem_wait
            ; gauge++ atomically; track max
            movi r4, 0x8000100
            movi r5, 1
            fetchadd r6, [r4], r5
            addi r6, r6, 1       ; value after increment
            movi r7, 0x8000108   ; max slot
        maxloop:
            ld8 r8, [r7]
            cmp r6, r8
            jcc.le maxdone
            mov r9, r6
            cmpxchg r8, [r7], r9
            jcc.ne maxloop
        maxdone:
            compute 20000
            ; gauge--
            movi r4, 0x8000100
            movi r5, -1
            fetchadd r6, [r4], r5
            movi r0, 0x8000000
            call @sem_post
            ret
    )");
    for (rt::Backend backend :
         {rt::Backend::Shred, rt::Backend::OsThread}) {
        SCOPED_TRACE(rt::backendName(backend));
        Ran r = runOn(backend, app);
        ASSERT_GT(r.ticks, 0u);
        EXPECT_LE(r.word(0x0800'0108), 2u);
        EXPECT_GE(r.word(0x0800'0108), 1u);
        EXPECT_EQ(r.word(0x0800'0100), 0u); // gauge back to zero
    }
}

TEST(Runtimes, EventReleasesAllWaiters)
{
    auto app = appFromAsm("event", R"(
        main:
            call @rt_init
            movi r4, 0
        spawn:
            movi r0, waiter
            mov r1, r4
            call @shred_create
            addi r4, r4, 1
            cmpi r4, 3
            jcc.lt spawn
            compute 30000        ; let the waiters block
            movi r0, 0x8000000
            call @event_set
            call @join_all
            movi r0, 0
            call @exit_process
        waiter:
            movi r0, 0x8000000
            call @event_wait
            movi r4, 0x8000100
            movi r5, 1
            fetchadd r6, [r4], r5
            ret
    )");
    checkBothBackends(app, 0x0800'0100, 3);
}

TEST(Runtimes, YieldRotatesShredsOnOneSequencer)
{
    // 3 cooperating shreds on a 1-AMS machine append to a sequence via
    // yields; all must make progress interleaved.
    auto app = appFromAsm("yield", R"(
        main:
            call @rt_init
            movi r4, 0
        spawn:
            movi r0, worker
            mov r1, r4
            call @shred_create
            addi r4, r4, 1
            cmpi r4, 3
            jcc.lt spawn
            call @join_all
            movi r0, 0
            call @exit_process
        worker:
            movi r14, 0
        loop:
            movi r4, 0x8000000
            movi r5, 1
            fetchadd r6, [r4], r5
            call @yield
            addi r14, r14, 1
            cmpi r14, 10
            jcc.lt loop
            ret
    )");
    Ran r = runOn(rt::Backend::Shred, app, /*numAms=*/1);
    ASSERT_GT(r.ticks, 0u);
    EXPECT_EQ(r.word(0x0800'0000), 30u);
}

TEST(Runtimes, MallocReturnsUsableMemory)
{
    auto app = appFromAsm("malloc", R"(
        main:
            call @rt_init
            movi r0, 4096
            call @malloc
            mov r14, r0
            movi r5, 0xABCD
            st8 [r14], r5
            ld8 r6, [r14]
            movi r4, 0x8000000
            st8 [r4], r6
            movi r0, 0
            call @exit_process
    )");
    checkBothBackends(app, 0x0800'0000, 0xABCD);
}

TEST(Runtimes, CondVarSignalsWaiters)
{
    // One waiter blocks on a condvar; main signals it after setting the
    // predicate.
    auto app = appFromAsm("cond", R"(
        main:
            call @rt_init
            movi r0, waiter
            movi r1, 0
            call @shred_create
            compute 30000          ; let the waiter block
            movi r0, 0x8000000     ; mutex
            call @mutex_lock
            movi r4, 0x8000200     ; predicate
            movi r5, 1
            st8 [r4], r5
            movi r0, 0x8000100     ; cond
            movi r1, 0x8000000
            call @cond_signal
            movi r0, 0x8000000
            call @mutex_unlock
            call @join_all
            movi r0, 0
            call @exit_process
        waiter:
            movi r0, 0x8000000
            call @mutex_lock
        check:
            movi r4, 0x8000200
            ld8 r5, [r4]
            cmpi r5, 1
            jcc.eq ready
            movi r0, 0x8000100
            movi r1, 0x8000000
            call @cond_wait
            jmp check
        ready:
            movi r4, 0x8000300
            movi r5, 42
            st8 [r4], r5
            movi r0, 0x8000000
            call @mutex_unlock
            ret
    )");
    checkBothBackends(app, 0x0800'0300, 42);
}

TEST(Runtimes, MoreShredsThanSequencers)
{
    // M:N: 12 shreds on 1 OMS + 2 AMS must all complete.
    auto app = appFromAsm("oversubscribe", R"(
        main:
            call @rt_init
            movi r4, 0
        spawn:
            movi r0, worker
            mov r1, r4
            call @shred_create
            addi r4, r4, 1
            cmpi r4, 12
            jcc.lt spawn
            call @join_all
            movi r0, 0
            call @exit_process
        worker:
            compute 20000
            movi r4, 0x8000000
            movi r5, 1
            fetchadd r6, [r4], r5
            ret
    )");
    Ran r = runOn(rt::Backend::Shred, app, /*numAms=*/2);
    ASSERT_GT(r.ticks, 0u);
    EXPECT_EQ(r.word(0x0800'0000), 12u);
}
