/**
 * @file
 * Supervised --isolate execution tests: the deterministic
 * fault-injection plan (grammar, diagnostics, seeded probability
 * schedules), per-point deadlines (hung workers SIGKILLed into
 * RunStatus::WorkerTimeout), bounded retry/backoff (transient faults
 * recover, persistent faults exhaust the budget with attempt
 * accounting), and the graceful-degradation contract: a chaos sweep's
 * surviving points are byte-identical to a clean serial run.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "driver/faults.hh"
#include "driver/runner.hh"
#include "sim/logging.hh"

using namespace misp;
using namespace misp::driver;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuietLogging(true); }
};

const ::testing::Environment *const kQuietEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

/** Three fast grid points (workload.workers = 1, 2, 3). */
const char *kSupervisorScn = R"(
[scenario]
name = supervisor_test

[machine misp]
ams = 3
phys_frames = 65536

[workload]
name = dense_mvm

[sweep]
workload.workers = 1, 2, 3
)";

std::vector<PointResult>
runSupervised(const RunnerOptions &opts, Scenario *scOut = nullptr)
{
    SpecFile spec;
    Scenario sc;
    std::vector<ScenarioPoint> pts;
    std::string err;
    EXPECT_TRUE(SpecFile::parse(kSupervisorScn, "<test>", &spec, &err))
        << err;
    EXPECT_TRUE(Scenario::fromSpec(spec, &sc, &err)) << err;
    EXPECT_TRUE(sc.expandPoints(false, &pts, &err)) << err;
    if (scOut)
        *scOut = sc;
    return ScenarioRunner(opts).runAll(sc, pts);
}

// Sanitized workers run several times slower than native ones; a
// deadline tuned to catch a deliberately hung worker quickly must not
// also catch a healthy-but-instrumented one.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr int kDeadlineScale = 8;
#else
constexpr int kDeadlineScale = 1;
#endif

RunnerOptions
chaosOptions(const std::string &inject, int retries = 0)
{
    RunnerOptions opts;
    opts.hostLines = false;
    opts.isolate = true;
    opts.jobs = 2;
    opts.retries = retries;
    opts.backoffMs = 1;
    std::string err;
    EXPECT_TRUE(FaultPlan::parse(inject, &opts.faults, &err)) << err;
    return opts;
}

} // namespace

// ---------------------------------------------------------------------
// Fault plan grammar
// ---------------------------------------------------------------------

TEST(FaultPlan, ParsesKindsTargetsAndAttemptBounds)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse(
                    "seed=42;crash@0,2;hang@p0.25;corrupt_pipe@1..3x2;"
                    "fork_fail@4x*",
                    &plan, &err))
        << err;
    EXPECT_TRUE(plan.seedSet);
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.rules.size(), 4u);

    EXPECT_EQ(plan.rules[0].kind, FaultKind::Crash);
    EXPECT_EQ(plan.rules[0].points,
              (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(plan.rules[0].times, FaultRule::kAlways);

    EXPECT_EQ(plan.rules[1].kind, FaultKind::Hang);
    EXPECT_TRUE(plan.rules[1].points.empty());
    EXPECT_DOUBLE_EQ(plan.rules[1].probability, 0.25);

    EXPECT_EQ(plan.rules[2].kind, FaultKind::CorruptPipe);
    EXPECT_EQ(plan.rules[2].points,
              (std::vector<std::size_t>{1, 2, 3}));
    EXPECT_EQ(plan.rules[2].times, 2u);

    EXPECT_EQ(plan.rules[3].kind, FaultKind::ForkFail);
    EXPECT_EQ(plan.rules[3].times, FaultRule::kAlways);

    // toString is round-trippable.
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.toString(), &again, &err)) << err;
    EXPECT_EQ(again.toString(), plan.toString());
}

TEST(FaultPlan, MalformedSpecDiagnostics)
{
    const struct {
        const char *spec;
        const char *want;
    } cases[] = {
        {"", "empty --inject spec"},
        {";;", "empty --inject spec"},
        {"explode@0", "unknown fault kind"},
        {"crash", "want kind@points"},
        {"crash@", "has no target"},
        {"crash@p1.5", "probability"},
        {"crash@pzap", "bad point index"},
        {"crash@1,zz", "index"},
        {"crash@1x0", "attempt bound"},
        {"seed=notanumber", "seed"},
    };
    for (const auto &c : cases) {
        FaultPlan plan;
        std::string err;
        EXPECT_FALSE(FaultPlan::parse(c.spec, &plan, &err)) << c.spec;
        EXPECT_NE(err.find(c.want), std::string::npos)
            << c.spec << " -> " << err;
    }
}

TEST(FaultPlan, ScheduleIsDeterministicAndAttemptBounded)
{
    FaultPlan plan;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("seed=9;crash@p0.5", &plan, &err))
        << err;

    // The seeded probability schedule is a pure function of
    // (seed, rule, point): the same plan always picks the same points,
    // and a retry (higher attempt) sees the same decision — otherwise
    // a probabilistic fault would dissolve under retries.
    std::size_t fired = 0;
    for (std::size_t p = 0; p < 64; ++p) {
        FaultKind k1, k2;
        bool hit1 = plan.faultFor(p, 1, &k1);
        bool hit2 = plan.faultFor(p, 2, &k2);
        EXPECT_EQ(hit1, hit2) << "point " << p;
        if (hit1) {
            ++fired;
            EXPECT_EQ(k1, FaultKind::Crash);
        }
    }
    // p0.5 over 64 points: astronomically unlikely to be all-or-none.
    EXPECT_GT(fired, 0u);
    EXPECT_LT(fired, 64u);

    // An attempt-bounded rule stops firing past its bound.
    FaultPlan bounded;
    ASSERT_TRUE(FaultPlan::parse("hang@1x2", &bounded, &err)) << err;
    FaultKind kind;
    EXPECT_TRUE(bounded.faultFor(1, 1, &kind));
    EXPECT_TRUE(bounded.faultFor(1, 2, &kind));
    EXPECT_FALSE(bounded.faultFor(1, 3, &kind));
    EXPECT_FALSE(bounded.faultFor(0, 1, &kind));
}

TEST(FaultPlan, MergePrefersExplicitSeedAndAppendsRules)
{
    FaultPlan spec, cli;
    std::string err;
    ASSERT_TRUE(FaultPlan::parse("seed=1;crash@0", &spec, &err)) << err;
    ASSERT_TRUE(FaultPlan::parse("seed=2;hang@1", &cli, &err)) << err;
    spec.merge(cli);
    EXPECT_EQ(spec.seed, 2u);
    ASSERT_EQ(spec.rules.size(), 2u);
    EXPECT_EQ(spec.rules[0].kind, FaultKind::Crash);
    EXPECT_EQ(spec.rules[1].kind, FaultKind::Hang);

    // A CLI plan without an explicit seed leaves the spec's seed alone.
    FaultPlan noSeed;
    ASSERT_TRUE(FaultPlan::parse("fork_fail@2", &noSeed, &err)) << err;
    spec.merge(noSeed);
    EXPECT_EQ(spec.seed, 2u);
}

// ---------------------------------------------------------------------
// Supervised execution: deadlines, retries, fault kinds
// ---------------------------------------------------------------------

TEST(Supervisor, HungWorkerIsKilledAtDeadline)
{
    RunnerOptions opts = chaosOptions("hang@1");
    opts.deadlineMs = 250 * kDeadlineScale;
    std::vector<PointResult> results = runSupervised(opts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].run.ok());
    EXPECT_EQ(results[1].run.status, harness::RunStatus::WorkerTimeout);
    EXPECT_NE(results[1].run.note.find("deadline"), std::string::npos)
        << results[1].run.note;
    EXPECT_EQ(results[1].run.attempts, 1u);
    EXPECT_TRUE(results[2].run.ok());
}

TEST(Supervisor, TransientCrashRetriesThenSucceeds)
{
    // crash@1x1: the fault fires only on attempt 1, so one retry
    // recovers the point.
    RunnerOptions opts = chaosOptions("crash@1x1", /*retries=*/1);
    std::vector<PointResult> results = runSupervised(opts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[1].run.ok());
    EXPECT_EQ(results[1].run.attempts, 2u);
    EXPECT_EQ(results[0].run.attempts, 1u);
    EXPECT_EQ(results[2].run.attempts, 1u);
}

TEST(Supervisor, PersistentCrashExhaustsRetryBudget)
{
    RunnerOptions opts = chaosOptions("crash@1", /*retries=*/2);
    std::vector<PointResult> results = runSupervised(opts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[1].run.status, harness::RunStatus::WorkerCrashed);
    EXPECT_EQ(results[1].run.attempts, 3u);
    EXPECT_NE(results[1].run.note.find("gave up after 3 attempts"),
              std::string::npos)
        << results[1].run.note;
}

TEST(Supervisor, CorruptPipePayloadFailsClosed)
{
    RunnerOptions opts = chaosOptions("corrupt_pipe@0");
    std::vector<PointResult> results = runSupervised(opts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].run.status, harness::RunStatus::WorkerCrashed);
    EXPECT_NE(results[0].run.note.find("undecodable"), std::string::npos)
        << results[0].run.note;
    EXPECT_TRUE(results[1].run.ok());
    EXPECT_TRUE(results[2].run.ok());
}

TEST(Supervisor, CorruptSnapshotSurfacesAsSnapshotError)
{
    RunnerOptions opts = chaosOptions("corrupt_snapshot@2");
    std::vector<PointResult> results = runSupervised(opts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].run.ok());
    EXPECT_TRUE(results[1].run.ok());
    EXPECT_EQ(results[2].run.status, harness::RunStatus::SnapshotError);
}

TEST(Supervisor, ForkFailureIsRetryableWithoutAChild)
{
    RunnerOptions opts = chaosOptions("fork_fail@0x1", /*retries=*/1);
    std::vector<PointResult> results = runSupervised(opts);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].run.ok());
    EXPECT_EQ(results[0].run.attempts, 2u);
}

TEST(Supervisor, SpecFaultsAndRunKnobsDriveTheBackend)
{
    // The [faults] and [run] sections are the spec-side spelling of
    // --inject/--retries/--backoff: with no CLI overrides (the -1
    // sentinels), the scenario supervises itself.
    const char *scn = R"(
[scenario]
name = spec_faults

[machine misp]
ams = 3
phys_frames = 65536

[workload]
name = dense_mvm

[sweep]
workload.workers = 1, 2

[run]
retries = 1
retry_backoff_ms = 1

[faults]
inject = crash@0x1
)";
    SpecFile spec;
    Scenario sc;
    std::vector<ScenarioPoint> pts;
    std::string err;
    ASSERT_TRUE(SpecFile::parse(scn, "<test>", &spec, &err)) << err;
    ASSERT_TRUE(Scenario::fromSpec(spec, &sc, &err)) << err;
    ASSERT_TRUE(sc.expandPoints(false, &pts, &err)) << err;

    RunnerOptions opts;
    opts.hostLines = false;
    opts.isolate = true;
    std::vector<PointResult> results =
        ScenarioRunner(opts).runAll(sc, pts);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].run.ok());
    EXPECT_EQ(results[0].run.attempts, 2u);
    EXPECT_TRUE(results[1].run.ok());
    EXPECT_EQ(results[1].run.attempts, 1u);
}

// ---------------------------------------------------------------------
// Degradation determinism: artifacts reproducible, survivors
// byte-identical to a clean serial run
// ---------------------------------------------------------------------

namespace {

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    return lines;
}

} // namespace

TEST(Supervisor, ChaosSweepArtifactsAreDeterministic)
{
    Scenario sc;
    RunnerOptions opts = chaosOptions("seed=7;crash@1;hang@p0.0");
    opts.deadlineMs = 10000;

    std::ostringstream json1, json2, metrics1, metrics2;
    std::vector<PointResult> run1 = runSupervised(opts, &sc);
    writeJson(json1, sc, false, buildMetricFrame(sc, run1));
    writeMetricsJson(metrics1, sc, false, buildMetricFrame(sc, run1));

    std::vector<PointResult> run2 = runSupervised(opts);
    writeJson(json2, sc, false, buildMetricFrame(sc, run2));
    writeMetricsJson(metrics2, sc, false, buildMetricFrame(sc, run2));

    EXPECT_EQ(json1.str(), json2.str());
    EXPECT_EQ(metrics1.str(), metrics2.str());
}

TEST(Supervisor, SurvivingPointsByteIdenticalToCleanSerialRun)
{
    Scenario sc;
    RunnerOptions serial;
    serial.hostLines = false;
    std::ostringstream cleanOs;
    writePoints(cleanOs,
                buildMetricFrame(sc, runSupervised(serial, &sc)));
    std::vector<std::string> clean = splitLines(cleanOs.str());

    RunnerOptions chaos = chaosOptions("crash@1");
    std::ostringstream chaosOs;
    writePoints(chaosOs, buildMetricFrame(sc, runSupervised(chaos)));
    std::vector<std::string> degraded = splitLines(chaosOs.str());

    ASSERT_EQ(clean.size(), 3u);
    ASSERT_EQ(degraded.size(), 3u);
    std::size_t failed = 0;
    for (std::size_t i = 0; i < degraded.size(); ++i) {
        if (degraded[i].find(" status=") != std::string::npos) {
            ++failed;
            EXPECT_NE(degraded[i].find("status=worker_crashed"),
                      std::string::npos)
                << degraded[i];
            continue;
        }
        // A surviving line is byte-identical to the clean run's.
        EXPECT_EQ(degraded[i], clean[i]);
    }
    EXPECT_EQ(failed, 1u);
}
