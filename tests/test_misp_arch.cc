/**
 * @file
 * Architecture-level tests of the MISP processor: SIGNAL delivery,
 * ring-transition serialization (§2.3), proxy execution (§2.5),
 * overhead accounting (Eq.1–3), MP configurations (§2.6) and the
 * aggregate AMS save area across OS thread switches (§2.2).
 *
 * These tests run small assembly programs through a full MispSystem
 * with the real ShredLib runtime attached.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "workloads/workload.hh"

using namespace misp;
using namespace misp::arch;

namespace {

/** Build a GuestApp from assembly source (entry symbol "main"). */
harness::GuestApp
asmApp(const std::string &name, const std::string &src,
       std::vector<harness::DataRegion> data = {})
{
    harness::GuestApp app;
    app.name = name;
    app.program = isa::assemble(src, mem::kCodeBase);
    app.data = std::move(data);
    return app;
}

} // namespace

TEST(MispArch, SignalStartsShredOnAms)
{
    // main SIGNALs AMS 1 with a continuation that stores a marker.
    harness::DataRegion region;
    region.addr = 0x0800'0000;
    region.size = mem::kPageSize;
    auto app = asmApp("sigtest", R"(
        main:
            movi r1, 1          ; sid
            movi r2, worker     ; eip
            movi r3, 0x8000FF8  ; esp (top of data page)
            signal r1, r2, r3
        waitloop:
            movi r4, 0x8000000
            ld8 r5, [r4]
            cmpi r5, 77
            jcc.ne waitloop
            movi r0, 0
            syscall 2           ; exit process
        worker:
            movi r4, 0x8000000
            movi r5, 77
            st8 [r4], r5
            halt
    )",
                      {region});

    harness::Experiment exp(SystemConfig::uniprocessor(3),
                            rt::Backend::Shred);
    auto proc = exp.load(app);
    Tick t = exp.runToCompletion(proc.process, 500'000'000).ticks;
    EXPECT_GT(t, 0u);
    EXPECT_EQ(proc.process->addressSpace().peekWord(0x0800'0000, 8), 77u);
    // The continuation started after one signal latency at least.
    EXPECT_GE(t, exp.system().processor(0).config().signalCycles);
}

TEST(MispArch, AmsPageFaultTriggersProxyExecution)
{
    // The shred on the AMS touches an unmapped page: proxy execution
    // must service it via the OMS and resume the shred.
    harness::DataRegion region;
    region.addr = 0x0800'0000;
    region.size = 4 * mem::kPageSize;
    auto app = asmApp("proxytest", R"(
        main:
            call 0x600000       ; rt_init (registers proxy handler)
            movi r1, 1
            movi r2, worker
            movi r3, 0x8003FF8
            signal r1, r2, r3
        waitloop:
            movi r4, 0x8000000
            ld8 r5, [r4]
            cmpi r5, 1234
            jcc.ne waitloop
            movi r0, 0
            syscall 2
        worker:
            movi r4, 0x8001000  ; a fresh page: compulsory fault -> proxy
            movi r5, 42
            st8 [r4], r5
            movi r4, 0x8000000
            movi r5, 1234
            st8 [r4], r5
            halt
    )",
                      {region});

    harness::Experiment exp(SystemConfig::uniprocessor(3),
                            rt::Backend::Shred);
    auto proc = exp.load(app);
    Tick t = exp.runToCompletion(proc.process, 500'000'000).ticks;
    ASSERT_GT(t, 0u);
    EXPECT_EQ(proc.process->addressSpace().peekWord(0x0800'1000, 8), 42u);
    MispProcessor &mp = exp.system().processor(0);
    EXPECT_GE(mp.eventCount(Ring0Cause::ProxyPageFault), 1u);
}

TEST(MispArch, AmsSyscallProxiesWithReturnValue)
{
    harness::DataRegion region;
    region.addr = 0x0800'0000;
    region.size = mem::kPageSize;
    auto app = asmApp("proxysyscall", R"(
        main:
            call 0x600000       ; rt_init
            movi r1, 1
            movi r2, worker
            movi r3, 0x8000FF8
            signal r1, r2, r3
        waitloop:
            movi r4, 0x8000000
            ld8 r5, [r4]
            cmpi r5, 0
            jcc.eq waitloop
            movi r0, 0
            syscall 2
        worker:
            syscall 10          ; GetTid, proxied via the OMS
            movi r4, 0x8000000
            st8 [r4], r0        ; store the returned tid (nonzero)
            halt
    )",
                      {region});

    harness::Experiment exp(SystemConfig::uniprocessor(2),
                            rt::Backend::Shred);
    auto proc = exp.load(app);
    Tick t = exp.runToCompletion(proc.process, 500'000'000).ticks;
    ASSERT_GT(t, 0u);
    EXPECT_EQ(proc.process->addressSpace().peekWord(0x0800'0000, 8),
              proc.mainThread->tid());
    MispProcessor &mp = exp.system().processor(0);
    EXPECT_GE(mp.eventCount(Ring0Cause::ProxySyscall), 1u);
}

TEST(MispArch, SerializationSuspendsRunningAms)
{
    // A long-running shred on the AMS; main performs a syscall. The AMS
    // must show suspended cycles from the serialization window.
    auto app = asmApp("serialize", R"(
        main:
            call 0x600000
            movi r1, 1
            movi r2, worker
            movi r3, 0
            signal r1, r2, r3
            movi r6, 0
        sysloop:
            syscall 11          ; Noop: Ring-0 round trip
            addi r6, r6, 1
            cmpi r6, 5
            jcc.lt sysloop
            movi r0, 0
            syscall 2
        worker:
            movi r5, 0
        spin:
            addi r5, r5, 1
            compute 50
            jmp spin
    )");

    harness::Experiment exp(SystemConfig::uniprocessor(1),
                            rt::Backend::Shred);
    auto proc = exp.load(app);
    Tick t = exp.runToCompletion(proc.process, 500'000'000).ticks;
    ASSERT_GT(t, 0u);
    MispProcessor &mp = exp.system().processor(0);
    EXPECT_GE(mp.eventCount(Ring0Cause::OmsSyscall), 5u);
    EXPECT_GT(mp.amsAt(0).suspendedCycles(), 0u);
    EXPECT_GE(mp.serializations(), 5u);
}

TEST(MispArch, SpeculativeMonitorAvoidsSuspension)
{
    auto src = R"(
        main:
            call 0x600000
            movi r1, 1
            movi r2, worker
            movi r3, 0
            signal r1, r2, r3
            movi r6, 0
        sysloop:
            syscall 11
            addi r6, r6, 1
            cmpi r6, 20
            jcc.lt sysloop
            movi r0, 0
            syscall 2
        worker:
            movi r5, 0
        spin:
            addi r5, r5, 1
            compute 50
            jmp spin
    )";

    SystemConfig spec = SystemConfig::uniprocessor(1);
    spec.misp.serialization = SerializationPolicy::SpeculativeMonitor;
    harness::Experiment specExp(spec, rt::Backend::Shred);
    auto specProc = specExp.load(asmApp("spec", src));
    Tick specT =
        specExp.runToCompletion(specProc.process, 500'000'000).ticks;
    ASSERT_GT(specT, 0u);
    EXPECT_EQ(specExp.system().processor(0).amsAt(0).suspendedCycles(),
              0u);

    harness::Experiment baseExp(SystemConfig::uniprocessor(1),
                                rt::Backend::Shred);
    auto baseProc = baseExp.load(asmApp("base", src));
    Tick baseT =
        baseExp.runToCompletion(baseProc.process, 500'000'000).ticks;
    ASSERT_GT(baseT, 0u);
    EXPECT_GT(baseExp.system().processor(0).amsAt(0).suspendedCycles(),
              0u);
}

TEST(MispArch, SerializeWindowMatchesEquationOne)
{
    // Measure one serialization episode: window = 2*signal + priv.
    // Use Noop syscalls and compare serializeCycles accounting.
    auto app = asmApp("eq1", R"(
        main:
            syscall 11
            movi r0, 0
            syscall 2
    )");
    SystemConfig cfg = SystemConfig::uniprocessor(3);
    cfg.kernel.deviceIrqMeanPeriod = 0; // quiet
    harness::Experiment exp(cfg, rt::Backend::Shred);
    auto proc = exp.load(app);
    Tick t = exp.runToCompletion(proc.process, 500'000'000).ticks;
    ASSERT_GT(t, 0u);

    MispProcessor &mp = exp.system().processor(0);
    const Cycles signal = mp.config().signalCycles;
    double serializations = mp.serializations();
    double windows = mp.statGroup().lookupValue("serializeCycles");
    double priv = mp.statGroup().lookupValue("privCycles");
    // Eq.1 summed over all episodes.
    EXPECT_DOUBLE_EQ(windows, 2.0 * signal * serializations + priv);
}

TEST(MispArch, ProxySignalAccountingMatchesEquationTwo)
{
    harness::DataRegion region;
    region.addr = 0x0800'0000;
    region.size = 16 * mem::kPageSize;
    auto app = asmApp("eq2", R"(
        main:
            call 0x600000
            movi r1, 1
            movi r2, worker
            movi r3, 0x800FFF8
            signal r1, r2, r3
        waitloop:
            movi r4, 0x8000000
            ld8 r5, [r4]
            cmpi r5, 5
            jcc.ne waitloop
            movi r0, 0
            syscall 2
        worker:
            ; touch 5 fresh pages -> 5 proxy page faults
            movi r4, 0x8001000
            movi r6, 0
        faultloop:
            st8 [r4], r6
            addi r4, r4, 4096
            addi r6, r6, 1
            cmpi r6, 5
            jcc.lt faultloop
            movi r4, 0x8000000
            movi r5, 5
            st8 [r4], r5
            halt
    )",
                      {region});

    SystemConfig cfg = SystemConfig::uniprocessor(2);
    cfg.kernel.deviceIrqMeanPeriod = 0;
    harness::Experiment exp(cfg, rt::Backend::Shred);
    auto proc = exp.load(app);
    Tick t = exp.runToCompletion(proc.process, 500'000'000).ticks;
    ASSERT_GT(t, 0u);

    MispProcessor &mp = exp.system().processor(0);
    const Cycles signal = mp.config().signalCycles;
    double requests = mp.statGroup().lookupValue("proxyRequests");
    double egress = mp.statGroup().lookupValue("proxySignalCycles");
    EXPECT_GE(requests, 5.0);
    // Eq.2: proxy egress overhead = 3 * signal per request.
    EXPECT_DOUBLE_EQ(egress, 3.0 * signal * requests);
}

TEST(MispArch, MpConfigurationsExposeCorrectTopology)
{
    MispSystem sys(SystemConfig::mp({3, 0, 0, 0, 0}));
    EXPECT_EQ(sys.numProcessors(), 5u);
    EXPECT_EQ(sys.processor(0).numAms(), 3u);
    EXPECT_EQ(sys.processor(1).numAms(), 0u);
    EXPECT_EQ(sys.processor(0).numSequencers(), 4u);
    // Kernel sees one CPU per MISP processor (the OMSs only).
    EXPECT_EQ(sys.kernel().numCpus(), 5u);
}

TEST(MispArch, SequencerLookupBySid)
{
    MispSystem sys(SystemConfig::uniprocessor(2));
    MispProcessor &mp = sys.processor(0);
    EXPECT_EQ(mp.sequencer(0), &mp.oms());
    EXPECT_EQ(mp.sequencer(1), &mp.amsAt(0));
    EXPECT_EQ(mp.sequencer(2), &mp.amsAt(1));
    EXPECT_EQ(mp.sequencer(3), nullptr);
}

TEST(MispArch, TwoProcessesShareOneOmsByTimeSlicing)
{
    // Two single-threaded processes on a 1x2 MISP system: both must make
    // progress through preemptive scheduling.
    auto src = R"(
        main:
            movi r5, 0
        loop:
            compute 2000
            addi r5, r5, 1
            cmpi r5, 3000
            jcc.lt loop
            movi r0, 0
            syscall 2
    )";
    harness::Experiment exp(SystemConfig::uniprocessor(1),
                            rt::Backend::Shred);
    auto a = exp.load(asmApp("a", src));
    auto b = exp.load(asmApp("b", src));
    Tick ta = exp.runToCompletion(a.process, 100'000'000'000ull).ticks;
    ASSERT_GT(ta, 0u);
    // Both processes interleaved on one OMS: the first to finish needed
    // roughly twice its solo time.
    EXPECT_GT(exp.system().kernel().contextSwitches(), 2u);
    (void)b;
}

TEST(MispArch, ShreddedThreadSurvivesContextSwitch)
{
    // A shredded app (raytracer, small) shares the OMS with a competing
    // process; its shreds are suspended/saved/restored across thread
    // switches and the result must stay correct.
    wl::WorkloadParams params;
    params.workers = 3;
    wl::Workload w = wl::buildRaytracer(params);

    harness::Experiment exp(SystemConfig::uniprocessor(3),
                            rt::Backend::Shred);
    auto rt = exp.load(w.app);
    auto spin = exp.load(wl::buildSpinner(params).app);
    (void)spin;
    Tick t = exp.runToCompletion(rt.process, 100'000'000'000ull).ticks;
    ASSERT_GT(t, 0u);
    EXPECT_TRUE(w.validate(rt.process->addressSpace()));
    EXPECT_GT(exp.system().processor(0).statGroup().lookupValue(
                  "threadSwitches"),
              1.0);
}

TEST(MispArch, SignalCostZeroStillCorrect)
{
    wl::WorkloadParams params;
    params.workers = 3;
    wl::Workload w = wl::buildDenseMvm(params);
    SystemConfig cfg = SystemConfig::uniprocessor(3);
    cfg.misp.signalCycles = 0;
    harness::Experiment exp(cfg, rt::Backend::Shred);
    auto proc = exp.load(w.app);
    Tick t = exp.runToCompletion(proc.process).ticks;
    ASSERT_GT(t, 0u);
    EXPECT_TRUE(w.validate(proc.process->addressSpace()));
}

TEST(MispArch, HigherSignalCostNeverFaster)
{
    wl::WorkloadParams params;
    params.workers = 3;
    Tick prev = 0;
    for (Cycles cost : {Cycles{0}, Cycles{5000}, Cycles{50000}}) {
        wl::Workload w = wl::buildSparseMvm(params);
        SystemConfig cfg = SystemConfig::uniprocessor(3);
        cfg.misp.signalCycles = cost;
        cfg.kernel.deviceIrqMeanPeriod = 0;
        harness::Experiment exp(cfg, rt::Backend::Shred);
        auto proc = exp.load(w.app);
        Tick t = exp.runToCompletion(proc.process).ticks;
        ASSERT_GT(t, 0u);
        EXPECT_GE(t + 1000, prev) << "signal=" << cost; // small tolerance
        prev = t;
    }
}

TEST(MispArch, Table1EventClassesAllExercised)
{
    wl::WorkloadParams params;
    params.workers = 7;
    wl::Workload w = wl::buildArt(params); // has AMS syscalls too
    harness::Experiment exp(SystemConfig::uniprocessor(7),
                            rt::Backend::Shred);
    auto proc = exp.load(w.app);
    Tick t = exp.runToCompletion(proc.process).ticks;
    ASSERT_GT(t, 0u);
    MispProcessor &mp = exp.system().processor(0);
    EXPECT_GT(mp.eventCount(Ring0Cause::OmsSyscall), 0u);
    EXPECT_GT(mp.eventCount(Ring0Cause::OmsPageFault), 0u);
    EXPECT_GT(mp.eventCount(Ring0Cause::Timer), 0u);
    EXPECT_GT(mp.eventCount(Ring0Cause::OtherInterrupt), 0u);
    EXPECT_GT(mp.eventCount(Ring0Cause::ProxySyscall), 0u);
    EXPECT_GT(mp.eventCount(Ring0Cause::ProxyPageFault), 0u);
}
