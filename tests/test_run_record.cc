/**
 * @file
 * Unified run layer tests: RunRecord status/derived metrics, runOne()
 * equivalence with the hand-rolled experiment loops the ported benches
 * (table1_events, fig5_signal_cost, ablation_serialization,
 * ablation_pageprobe) used before the scenario specs existed, `--jobs`
 * byte-identity with serial runs, [report] assert evaluation and the
 * events-mode emitter, and the `param.<key>` per-workload knobs.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/report.hh"
#include "driver/runner.hh"
#include "harness/run_record.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

using namespace misp;
using namespace misp::driver;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuietLogging(true); }
};

const ::testing::Environment *const kQuietEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

Scenario
mustScenario(const std::string &text)
{
    SpecFile spec;
    Scenario sc;
    std::string err;
    EXPECT_TRUE(SpecFile::parse(text, "<test>", &spec, &err)) << err;
    EXPECT_TRUE(Scenario::fromSpec(spec, &sc, &err)) << err;
    return sc;
}

std::vector<PointResult>
runScenarioText(const std::string &text, unsigned jobs = 1)
{
    Scenario sc = mustScenario(text);
    std::vector<ScenarioPoint> pts;
    std::string err;
    EXPECT_TRUE(sc.expandPoints(false, &pts, &err)) << err;
    ScenarioRunner::Options opts;
    opts.hostLines = false;
    opts.jobs = jobs;
    return ScenarioRunner(opts).runAll(sc, pts);
}

/** The pre-port runWorkload() loop every hand-rolled bench shared:
 *  build, load unpinned, run to completion, validate, snapshot. */
struct HandRolledRun {
    Tick ticks = 0;
    bool valid = false;
    harness::EventSnapshot events;
    double suspendedCycles = 0; // summed directly over the AMSs
};

HandRolledRun
handRolledRunWorkload(const arch::SystemConfig &sys, rt::Backend backend,
                      const std::string &name,
                      const wl::WorkloadParams &params)
{
    const wl::WorkloadInfo *info = wl::findWorkload(name);
    EXPECT_NE(info, nullptr) << name;
    wl::Workload w = info->build(params);
    harness::Experiment exp(sys, backend);
    harness::LoadedProcess proc = exp.load(w.app);
    HandRolledRun out;
    out.ticks = exp.runToCompletion(proc.process).ticks;
    out.valid = !w.validate || w.validate(proc.process->addressSpace());
    arch::MispProcessor &mp = exp.system().processor(0);
    out.events = harness::snapshotEvents(mp);
    for (unsigned i = 0; i < mp.numAms(); ++i)
        out.suspendedCycles += double(mp.amsAt(i).suspendedCycles());
    return out;
}

/** The evaluator reads results through the sweep's MetricFrame; the
 *  tests build it the way mispsim does. */
bool
evalAsserts(const Scenario &sc, const std::vector<PointResult> &results,
            std::vector<AssertFailure> *failures, std::string *err)
{
    return evaluateAsserts(sc, buildMetricFrame(sc, results), failures,
                           err);
}

/** A synthetic completed record for emitter/assert tests. */
driver::PointResult
fakePoint(const std::string &machine, const std::string &workload,
          Tick ticks, std::uint64_t insts,
          std::vector<std::pair<std::string, std::string>> coords = {})
{
    driver::PointResult r;
    r.machine = machine;
    r.workload = workload;
    r.coords = std::move(coords);
    r.run.status = harness::RunStatus::Completed;
    r.run.ticks = ticks;
    r.run.valid = true;
    r.run.instsRetired = insts;
    r.run.events.omsPageFaults = 10;
    r.run.events.amsPageFaults = 40;
    return r;
}

} // namespace

// ---------------------------------------------------------------------
// RunRecord basics
// ---------------------------------------------------------------------

TEST(RunRecord, StatusEnumReplacesAmbiguousTickZero)
{
    // A spinner never exits: the old API returned the ambiguous Tick 0,
    // the record says MaxTicksReached explicitly.
    harness::RunRequest req;
    req.label = "spin";
    req.config = arch::SystemConfig::uniprocessor(1);
    req.target = {"spinner", {}};
    req.maxTicks = 5'000'000;
    req.hostLine = false;
    harness::RunRecord rec = harness::runOne(req);
    EXPECT_EQ(rec.status, harness::RunStatus::MaxTicksReached);
    EXPECT_FALSE(rec.completed());
    EXPECT_FALSE(rec.ok());
    EXPECT_EQ(rec.ticks, 0u);
    EXPECT_GT(rec.instsRetired, 0u); // it did run, it just never exited
    EXPECT_STREQ(harness::runStatusName(rec.status), "max_ticks");

    harness::RunRequest fin = req;
    fin.target = {"dense_mvm", {}};
    fin.maxTicks = 2'000'000'000'000ull;
    harness::RunRecord done = harness::runOne(fin);
    EXPECT_EQ(done.status, harness::RunStatus::Completed);
    EXPECT_TRUE(done.ok());
    EXPECT_GT(done.ticks, 0u);
}

TEST(RunRecord, DerivedMetrics)
{
    harness::RunRecord base;
    base.status = harness::RunStatus::Completed;
    base.ticks = 200;
    harness::RunRecord r;
    r.status = harness::RunStatus::Completed;
    r.ticks = 100;
    r.instsRetired = 2'000'000;

    EXPECT_DOUBLE_EQ(r.speedupOver(base), 2.0);
    EXPECT_DOUBLE_EQ(base.speedupOver(r), 0.5);
    EXPECT_DOUBLE_EQ(r.megaCycles(), 1e-4);
    EXPECT_DOUBLE_EQ(r.perMegaInsts(10), 5.0);

    harness::RunRecord never;
    EXPECT_DOUBLE_EQ(r.speedupOver(never), 0.0);
    EXPECT_DOUBLE_EQ(never.speedupOver(r), 0.0);
    EXPECT_DOUBLE_EQ(never.perMegaInsts(10), 0.0);
}

// ---------------------------------------------------------------------
// Ported benches vs the old hand-rolled loops, tick for tick
// ---------------------------------------------------------------------

TEST(PortedBenches, Table1RunsMatchHandRolledLoop)
{
    // scenarios/table1.scn, shrunk to two applications: each grid
    // point must reproduce the old runWorkload(mispUni(7), Shred, ...)
    // numbers exactly — ticks and every Table-1 event class.
    wl::WorkloadParams params; // defaults: workers=7, scale=1
    std::vector<PointResult> results = runScenarioText(
        "[machine misp]\nprocessors = 7\nbackend = shred\n"
        "[workload]\nname = dense_mvm\nworkers = 7\n"
        "[sweep]\nworkload.name = dense_mvm, gauss\n");
    ASSERT_EQ(results.size(), 2u);

    for (const PointResult &r : results) {
        HandRolledRun old = handRolledRunWorkload(
            arch::SystemConfig::uniprocessor(7), rt::Backend::Shred,
            r.workload, params);
        EXPECT_EQ(r.run.ticks, old.ticks) << r.workload;
        EXPECT_TRUE(r.run.valid);
        EXPECT_EQ(r.run.events.omsSyscalls, old.events.omsSyscalls);
        EXPECT_EQ(r.run.events.omsPageFaults, old.events.omsPageFaults);
        EXPECT_EQ(r.run.events.timer, old.events.timer);
        EXPECT_EQ(r.run.events.interrupts, old.events.interrupts);
        EXPECT_EQ(r.run.events.amsSyscalls, old.events.amsSyscalls);
        EXPECT_EQ(r.run.events.amsPageFaults, old.events.amsPageFaults);
        EXPECT_EQ(r.run.events.serializations, old.events.serializations);
    }
}

TEST(PortedBenches, Fig5SignalSweepMatchesHandRolledLoop)
{
    // scenarios/fig5_signal.scn shape: one application at signal 0 and
    // 5000 cycles, against the old per-cost mispUni(7) loop.
    std::vector<PointResult> results = runScenarioText(
        "[machine misp]\nprocessors = 7\nbackend = shred\n"
        "[workload]\nname = dense_mvm\nworkers = 7\n"
        "[sweep]\nmachine.signal_cycles = 0, 5000\n");
    ASSERT_EQ(results.size(), 2u);

    wl::WorkloadParams params;
    for (Cycles cost : {Cycles(0), Cycles(5000)}) {
        arch::SystemConfig cfg = arch::SystemConfig::uniprocessor(7);
        cfg.misp.signalCycles = cost;
        HandRolledRun old = handRolledRunWorkload(
            cfg, rt::Backend::Shred, "dense_mvm", params);
        const PointResult *r = findResultCoords(
            results, "misp",
            {{"machine.signal_cycles", std::to_string(cost)}});
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->run.ticks, old.ticks) << "signal=" << cost;
    }
    // The sweep must actually change the machine: nonzero signal cost
    // is slower than the ideal.
    EXPECT_GT(results[1].run.ticks, results[0].run.ticks);
}

TEST(PortedBenches, SerializationPolicySweepMatchesHandRolledLoop)
{
    // scenarios/ablation_serialization.scn shape, one application; the
    // ablation's extra metric (total AMS suspension cycles) must also
    // match the old direct amsAt(i).suspendedCycles() sum.
    std::vector<PointResult> results = runScenarioText(
        "[machine misp]\nprocessors = 7\nbackend = shred\n"
        "[workload]\nname = gauss\nworkers = 7\n"
        "[sweep]\nmachine.serialization = suspend_all, "
        "speculative_monitor\n");
    ASSERT_EQ(results.size(), 2u);

    wl::WorkloadParams params;
    const std::pair<const char *, arch::SerializationPolicy> legs[] = {
        {"suspend_all", arch::SerializationPolicy::SuspendAll},
        {"speculative_monitor",
         arch::SerializationPolicy::SpeculativeMonitor},
    };
    for (const auto &[coord, policy] : legs) {
        arch::SystemConfig cfg = arch::SystemConfig::uniprocessor(7);
        cfg.misp.serialization = policy;
        HandRolledRun old = handRolledRunWorkload(
            cfg, rt::Backend::Shred, "gauss", params);
        const PointResult *r = findResultCoords(
            results, "misp", {{"machine.serialization", coord}});
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->run.ticks, old.ticks) << coord;
        EXPECT_DOUBLE_EQ(r->run.events.suspendedCycles,
                         old.suspendedCycles)
            << coord;
    }
    // The speculative policy removes all AMS suspension.
    EXPECT_GT(results[0].run.events.suspendedCycles, 0.0);
    EXPECT_DOUBLE_EQ(results[1].run.events.suspendedCycles, 0.0);
}

TEST(PortedBenches, PageprobeSweepMatchesHandRolledLoop)
{
    // scenarios/ablation_pageprobe.scn shape: prefault off -> on moves
    // compulsory faults from the AMSs to the OMS serial region.
    std::vector<PointResult> results = runScenarioText(
        "[machine misp]\nprocessors = 7\nbackend = shred\n"
        "[workload]\nname = dense_mvm\nworkers = 7\n"
        "[sweep]\nworkload.prefault = false, true\n");
    ASSERT_EQ(results.size(), 2u);

    for (bool prefault : {false, true}) {
        wl::WorkloadParams params;
        params.prefault = prefault;
        HandRolledRun old = handRolledRunWorkload(
            arch::SystemConfig::uniprocessor(7), rt::Backend::Shred,
            "dense_mvm", params);
        const PointResult *r = findResultCoords(
            results, "misp",
            {{"workload.prefault", prefault ? "true" : "false"}});
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->run.ticks, old.ticks) << "prefault=" << prefault;
        EXPECT_EQ(r->run.events.amsPageFaults, old.events.amsPageFaults);
        EXPECT_EQ(r->run.events.omsPageFaults, old.events.omsPageFaults);
    }
    const PointResult *off = findResultCoords(
        results, "misp", {{"workload.prefault", "false"}});
    const PointResult *on = findResultCoords(
        results, "misp", {{"workload.prefault", "true"}});
    EXPECT_GT(off->run.events.amsPageFaults,
              on->run.events.amsPageFaults);
}

// ---------------------------------------------------------------------
// --jobs N determinism
// ---------------------------------------------------------------------

TEST(ParallelRunner, Jobs4OutputByteIdenticalToSerial)
{
    const std::string text =
        "[scenario]\nname = par\ntitle = Parallel determinism\n"
        "[machine misp]\nams = 3\n"
        "[workload]\nname = dense_mvm\n"
        "[sweep]\nworkload.workers = 1, 2, 3\n";
    std::vector<PointResult> serial = runScenarioText(text, 1);
    std::vector<PointResult> parallel = runScenarioText(text, 4);
    ASSERT_EQ(serial.size(), parallel.size());

    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].run.ticks, parallel[i].run.ticks);
        EXPECT_EQ(serial[i].run.instsRetired,
                  parallel[i].run.instsRetired);
        EXPECT_EQ(serial[i].coords, parallel[i].coords);
    }

    Scenario sc = mustScenario(text);
    auto render = [&](const std::vector<PointResult> &results) {
        const harness::MetricFrame frame = buildMetricFrame(sc, results);
        std::ostringstream json, table, points;
        writeJson(json, sc, false, frame);
        writeTable(table, sc, frame, false);
        writePoints(points, frame);
        return json.str() + "\x1e" + table.str() + "\x1e" + points.str();
    };
    EXPECT_EQ(render(serial), render(parallel));
}

// ---------------------------------------------------------------------
// [report] asserts
// ---------------------------------------------------------------------

TEST(ReportAsserts, PassFailAndDiagnostics)
{
    Scenario sc = mustScenario(
        "[machine a]\nams = 1\n[machine b]\nams = 3\n"
        "[workload]\nname = dense_mvm\n"
        "[report]\nbaseline_machine = a\n"
        "assert = b.speedup >= 1.5\n"
        "assert = a.events.oms_page_faults == 10\n"
        "assert = b.events_per_mi.ams_page_faults <= 20 + 1.5 * 2\n");
    EXPECT_EQ(sc.report.asserts.size(), 3u);

    std::vector<PointResult> results;
    results.push_back(fakePoint("a", "dense_mvm", 300, 1'000'000));
    results.push_back(fakePoint("b", "dense_mvm", 100, 2'000'000));

    std::vector<AssertFailure> failures;
    std::string err;
    ASSERT_TRUE(evalAsserts(sc, results, &failures, &err)) << err;
    EXPECT_TRUE(failures.empty());

    // A failing assert reports its spec line and both sides.
    Scenario bad = sc;
    bad.report.asserts = {{"b.speedup >= 100", 42}};
    failures.clear();
    ASSERT_TRUE(evalAsserts(bad, results, &failures, &err)) << err;
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].line, 42);
    EXPECT_NE(failures[0].detail.find("lhs=3"), std::string::npos);

    // Malformed expressions and unknown references are hard errors.
    bad.report.asserts = {{"b.speedup >=", 7}};
    failures.clear();
    EXPECT_FALSE(evalAsserts(bad, results, &failures, &err));
    EXPECT_NE(err.find(":7:"), std::string::npos);

    bad.report.asserts = {{"nosuch.ticks > 0", 8}};
    EXPECT_FALSE(evalAsserts(bad, results, &failures, &err));
    EXPECT_NE(err.find("names no [machine] section"), std::string::npos);

    bad.report.asserts = {{"b.nosuchmetric > 0", 9}};
    EXPECT_FALSE(evalAsserts(bad, results, &failures, &err));
    EXPECT_NE(err.find("unknown metric"), std::string::npos);

    // Division by zero fails closed (a guard dividing by a run that
    // never finished must not silently pass), never evaluates to 0.
    bad.report.asserts = {{"a.ticks / 0 <= 1", 10}};
    EXPECT_FALSE(evalAsserts(bad, results, &failures, &err));
    EXPECT_NE(err.find("division by zero"), std::string::npos);

    // speedup requires a baseline machine.
    Scenario nobase = mustScenario(
        "[machine a]\nams = 1\n[workload]\nname = dense_mvm\n"
        "[report]\nassert = a.speedup >= 1\n");
    std::vector<PointResult> one;
    one.push_back(fakePoint("a", "dense_mvm", 100, 1'000'000));
    EXPECT_FALSE(evalAsserts(nobase, one, &failures, &err));
    EXPECT_NE(err.find("baseline_machine"), std::string::npos);
}

TEST(ReportAsserts, ParenthesesGroupSubexpressions)
{
    Scenario sc = mustScenario(
        "[machine a]\nams = 1\n[machine b]\nams = 3\n"
        "[workload]\nname = dense_mvm\n[report]\nbaseline_machine = a\n");
    std::vector<PointResult> results;
    results.push_back(fakePoint("a", "dense_mvm", 300, 1'000'000));
    results.push_back(fakePoint("b", "dense_mvm", 100, 2'000'000));

    std::vector<AssertFailure> failures;
    std::string err;

    // Without parens: 300 - 100 / 100 = 299. With: (300-100)/100 = 2.
    sc.report.asserts = {{"a.ticks - b.ticks / b.ticks == 299", 1},
                         {"( a.ticks - b.ticks ) / b.ticks == 2", 2},
                         // Parens may hug their operands.
                         {"(a.ticks - b.ticks) / b.ticks == 2", 3},
                         // Nesting composes.
                         {"( ( a.ticks - b.ticks ) / ( b.ticks ) ) "
                          "* 10 == 20",
                          4}};
    failures.clear();
    ASSERT_TRUE(evalAsserts(sc, results, &failures, &err)) << err;
    EXPECT_TRUE(failures.empty()) << failures.size();

    // Unbalanced parens are hard errors, both ways.
    sc.report.asserts = {{"( a.ticks > 0", 5}};
    EXPECT_FALSE(evalAsserts(sc, results, &failures, &err));
    EXPECT_NE(err.find("expected ')'"), std::string::npos);
    sc.report.asserts = {{"a.ticks ) > 0", 6}};
    EXPECT_FALSE(evalAsserts(sc, results, &failures, &err));
}

TEST(ReportAsserts, EvaluatedPerCoordinateGroup)
{
    Scenario sc = mustScenario(
        "[machine a]\nams = 1\n[machine b]\nams = 3\n"
        "[workload]\nname = dense_mvm\n"
        "[sweep]\nworkload.workers = 1, 2\n"
        "[report]\nbaseline_machine = a\nassert = b.speedup >= 2\n");

    std::vector<PointResult> results;
    results.push_back(
        fakePoint("a", "dense_mvm", 400, 1'000'000,
                  {{"workload.workers", "1"}}));
    results.push_back(
        fakePoint("b", "dense_mvm", 100, 1'000'000,
                  {{"workload.workers", "1"}})); // 4.0x: holds
    results.push_back(
        fakePoint("a", "dense_mvm", 300, 1'000'000,
                  {{"workload.workers", "2"}}));
    results.push_back(
        fakePoint("b", "dense_mvm", 200, 1'000'000,
                  {{"workload.workers", "2"}})); // 1.5x: fails

    std::vector<AssertFailure> failures;
    std::string err;
    ASSERT_TRUE(evalAsserts(sc, results, &failures, &err)) << err;
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].detail.find("workload.workers=2"),
              std::string::npos);
}

TEST(ReportAsserts, DegradedGroupsAreSkippedAndCounted)
{
    // The workers=2 group lost its b point to a worker crash: the
    // per-group claim is skipped there (reported via skippedGroups),
    // aggregates exclude the group, and dividing by the crashed
    // point's zeroed metrics is suppressed instead of failing closed.
    Scenario sc = mustScenario(
        "[machine a]\nams = 1\n[machine b]\nams = 3\n"
        "[workload]\nname = dense_mvm\n"
        "[sweep]\nworkload.workers = 1, 2\n"
        "[report]\nbaseline_machine = a\n"
        "assert = a.ticks / b.ticks >= 2\n"
        "assert = count ( b.completed ) == count ( 1 )\n"
        "assert = sum ( b.ticks ) == 100\n");

    std::vector<PointResult> results;
    results.push_back(fakePoint("a", "dense_mvm", 400, 1'000'000,
                                {{"workload.workers", "1"}}));
    results.push_back(fakePoint("b", "dense_mvm", 100, 1'000'000,
                                {{"workload.workers", "1"}}));
    results.push_back(fakePoint("a", "dense_mvm", 300, 1'000'000,
                                {{"workload.workers", "2"}}));
    results.push_back(fakePoint("b", "dense_mvm", 200, 1'000'000,
                                {{"workload.workers", "2"}}));
    results[3].run.status = harness::RunStatus::WorkerTimeout;
    results[3].run.ticks = 0;
    results[3].run.valid = false;
    results[3].run.attempts = 2;

    std::vector<AssertFailure> failures;
    std::string err;
    std::size_t skipped = 0;
    ASSERT_TRUE(evaluateAsserts(sc, buildMetricFrame(sc, results),
                                &failures, &err, &skipped))
        << err;
    EXPECT_TRUE(failures.empty())
        << failures[0].text << ": " << failures[0].detail;
    EXPECT_EQ(skipped, 1u);
}

// ---------------------------------------------------------------------
// [report] mode = events
// ---------------------------------------------------------------------

TEST(EventsReport, NormalizesPerMegaInstructions)
{
    Scenario sc = mustScenario(
        "[scenario]\nname = ev\ntitle = Events test\n"
        "[machine m]\nams = 7\n[workload]\nname = dense_mvm\n"
        "[report]\nmode = events\n");
    EXPECT_EQ(sc.report.mode, ReportMode::Events);

    std::vector<PointResult> results;
    results.push_back(fakePoint("m", "dense_mvm", 1000, 2'000'000));
    const harness::MetricFrame frame = buildMetricFrame(sc, results);
    // 10 OMS faults / 2 MInsts = 5.000; 40 AMS faults -> 20.000.
    std::ostringstream os;
    writeEventsTable(os, sc, frame, /*markdown=*/false);
    EXPECT_NE(os.str().find("per 10^6 retired instructions"),
              std::string::npos);
    EXPECT_NE(os.str().find("5.000"), std::string::npos);
    EXPECT_NE(os.str().find("20.000"), std::string::npos);

    std::ostringstream md;
    writeEventsTable(md, sc, frame, /*markdown=*/true);
    EXPECT_NE(md.str().find("| machine |"), std::string::npos);
    EXPECT_NE(md.str().find("| --- |"), std::string::npos);

    // The default report mode stays Table.
    Scenario plain = mustScenario(
        "[machine m]\nams = 7\n[workload]\nname = dense_mvm\n");
    EXPECT_EQ(plain.report.mode, ReportMode::Table);
}

// ---------------------------------------------------------------------
// Per-workload knobs (param.<key>)
// ---------------------------------------------------------------------

TEST(WorkloadParamKnobs, RoutedThroughSetWorkloadParam)
{
    wl::WorkloadParams p;
    std::string err;
    ASSERT_TRUE(wl::setWorkloadParam(p, "param.rows", "36", &err)) << err;
    ASSERT_EQ(p.extra.size(), 1u);
    EXPECT_EQ(p.extra[0].first, "rows");
    EXPECT_EQ(p.extraU64("rows", 144), 36u);
    EXPECT_EQ(p.extraU64("missing", 7), 7u);

    // Re-setting replaces, not appends (sweep overrides rely on this).
    ASSERT_TRUE(wl::setWorkloadParam(p, "param.rows", "72", &err));
    ASSERT_EQ(p.extra.size(), 1u);
    EXPECT_EQ(p.extraU64("rows", 144), 72u);

    EXPECT_FALSE(wl::setWorkloadParam(p, "param.", "1", &err));
    EXPECT_NE(err.find("missing a knob name"), std::string::npos);

    // A knob that is present but unparseable fails closed instead of
    // silently running the default.
    ASSERT_TRUE(wl::setWorkloadParam(p, "param.rows", "1O0", &err));
    EXPECT_THROW(p.extraU64("rows", 144), SimError);
}

TEST(WorkloadParamKnobs, RaytracerSceneSizeKnob)
{
    // The RayTracer consumes param.rows as its scene row count: more
    // rows, more pixels, more ticks — through the scenario layer, and
    // sweepable as a workload.param.rows axis.
    std::vector<PointResult> results = runScenarioText(
        "[machine misp]\nams = 3\n"
        "[workload]\nname = Raytracer\nworkers = 3\n"
        "[sweep]\nworkload.param.rows = 24, 48\n");
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].run.ok());
    EXPECT_TRUE(results[1].run.ok());
    EXPECT_GT(results[1].run.ticks, results[0].run.ticks);

    // Equivalent to building with the knob set directly.
    wl::WorkloadParams p;
    p.workers = 3;
    std::string err;
    ASSERT_TRUE(wl::setWorkloadParam(p, "param.rows", "24", &err));
    HandRolledRun old = handRolledRunWorkload(
        arch::SystemConfig::uniprocessor(3), rt::Backend::Shred,
        "Raytracer", p);
    EXPECT_TRUE(old.valid);
    EXPECT_EQ(results[0].run.ticks, old.ticks);
}

// ---------------------------------------------------------------------
// Checked-in scenario specs
// ---------------------------------------------------------------------

TEST(CheckedInScenarios, PortedBenchSpecsParseAndExpand)
{
    const struct {
        const char *file;
        std::size_t quickPoints;
    } cases[] = {
        {"table1.scn", 4},                // quick spread x 1 machine
        {"fig5_signal.scn", 16},          // 4 workloads x 4 costs
        {"ablation_serialization.scn", 4}, // 2 workloads x 2 policies
        {"ablation_pageprobe.scn", 2},    // 1 workload x off/on
    };
    for (const auto &c : cases) {
        std::string path = findScenarioFile(c.file, nullptr);
        ASSERT_FALSE(path.empty())
            << c.file << " not found (run from build/ or the repo root)";
        SpecFile spec;
        Scenario sc;
        std::vector<ScenarioPoint> pts;
        std::string err;
        ASSERT_TRUE(SpecFile::parseFile(path, &spec, &err)) << err;
        ASSERT_TRUE(Scenario::fromSpec(spec, &sc, &err)) << err;
        ASSERT_TRUE(sc.expandPoints(/*quickMode=*/true, &pts, &err))
            << err;
        EXPECT_EQ(pts.size(), c.quickPoints) << c.file;
    }

    // table1 guards its claims from the spec (per-suite aggregates);
    // fig4 carries the §5.3 speedup asserts plus their suite-level
    // aggregate forms.
    std::string path = findScenarioFile("table1.scn", nullptr);
    SpecFile spec;
    Scenario sc;
    std::string err;
    ASSERT_TRUE(SpecFile::parseFile(path, &spec, &err)) << err;
    ASSERT_TRUE(Scenario::fromSpec(spec, &sc, &err)) << err;
    EXPECT_EQ(sc.report.mode, ReportMode::Events);
    EXPECT_EQ(sc.report.asserts.size(), 4u);

    path = findScenarioFile("fig4.scn", nullptr);
    ASSERT_FALSE(path.empty());
    ASSERT_TRUE(SpecFile::parseFile(path, &spec, &err)) << err;
    ASSERT_TRUE(Scenario::fromSpec(spec, &sc, &err)) << err;
    EXPECT_EQ(sc.report.asserts.size(), 5u);
}
