/**
 * @file
 * End-to-end smoke tests: a workload runs to completion and computes
 * the right answer on both the MISP machine and the SMP baseline.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace misp;

namespace {

struct RunOutcome {
    Tick ticks = 0;
    bool valid = false;
};

RunOutcome
runOnce(const arch::SystemConfig &sys, rt::Backend backend,
        wl::Workload workload)
{
    harness::Experiment exp(sys, backend);
    harness::LoadedProcess proc = exp.load(workload.app);
    RunOutcome out;
    out.ticks = exp.runToCompletion(proc.process).ticks;
    out.valid = !workload.validate ||
                workload.validate(proc.process->addressSpace());
    return out;
}

} // namespace

TEST(Smoke, DenseMvmOnMisp)
{
    wl::WorkloadParams params;
    params.workers = 7;
    wl::Workload w = wl::buildDenseMvm(params);
    RunOutcome out = runOnce(arch::SystemConfig::uniprocessor(7),
                             rt::Backend::Shred, std::move(w));
    EXPECT_GT(out.ticks, 0u);
    EXPECT_TRUE(out.valid);
}

TEST(Smoke, DenseMvmOnSmp)
{
    wl::WorkloadParams params;
    params.workers = 7;
    wl::Workload w = wl::buildDenseMvm(params);
    RunOutcome out =
        runOnce(arch::SystemConfig::mp({0, 0, 0, 0, 0, 0, 0, 0}),
                rt::Backend::OsThread, std::move(w));
    EXPECT_GT(out.ticks, 0u);
    EXPECT_TRUE(out.valid);
}

TEST(Smoke, MispBeatsSingleSequencer)
{
    wl::WorkloadParams params;
    params.workers = 7;

    RunOutcome par = runOnce(arch::SystemConfig::uniprocessor(7),
                             rt::Backend::Shred,
                             wl::buildDenseMvm(params));
    RunOutcome ser = runOnce(arch::SystemConfig::mp({0}),
                             rt::Backend::OsThread,
                             wl::buildDenseMvm(params));
    ASSERT_GT(par.ticks, 0u);
    ASSERT_GT(ser.ticks, 0u);
    double speedup =
        static_cast<double>(ser.ticks) / static_cast<double>(par.ticks);
    EXPECT_GT(speedup, 3.0) << "expected parallel speedup on 8 sequencers";
}
