/**
 * @file
 * Unit and property tests for the MISA instruction set: encoding,
 * decoding, latencies, the program builder and the assembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/isa.hh"
#include "isa/program.hh"
#include "sim/random.hh"

using namespace misp;
using namespace misp::isa;

// ---------------------------------------------------------------------
// Encode/decode
// ---------------------------------------------------------------------

TEST(IsaEncoding, RoundTripProperty)
{
    // Property: decode(encode(i)) == i for every well-formed instruction.
    Rng rng(2024);
    for (int trial = 0; trial < 2000; ++trial) {
        Instruction inst;
        inst.op = static_cast<Opcode>(
            rng.below(static_cast<std::uint64_t>(Opcode::NumOpcodes)));
        inst.rd = static_cast<std::uint8_t>(rng.below(kNumRegs));
        inst.rs1 = static_cast<std::uint8_t>(rng.below(kNumRegs));
        inst.rs2 = static_cast<std::uint8_t>(rng.below(kNumRegs));
        inst.sub = static_cast<std::uint8_t>(rng.below(8));
        inst.imm = rng.next();
        auto bytes = encode(inst);
        Instruction out;
        ASSERT_TRUE(decode(bytes.data(), &out));
        EXPECT_EQ(inst, out);
    }
}

TEST(IsaEncoding, RejectsBadOpcode)
{
    std::uint8_t bytes[kInstBytes] = {};
    bytes[0] = 0xFF;
    Instruction out;
    EXPECT_FALSE(decode(bytes, &out));
}

TEST(IsaEncoding, RejectsBadRegister)
{
    Instruction inst;
    inst.op = Opcode::Mov;
    inst.rd = 3;
    auto bytes = encode(inst);
    bytes[2] = 99; // rs1 out of range
    Instruction out;
    EXPECT_FALSE(decode(bytes.data(), &out));
}

TEST(IsaLatency, EveryOpcodeHasNonzeroLatency)
{
    for (unsigned op = 0;
         op < static_cast<unsigned>(Opcode::NumOpcodes); ++op) {
        EXPECT_GE(baseLatency(static_cast<Opcode>(op)), 1u)
            << opcodeName(static_cast<Opcode>(op));
    }
}

TEST(IsaLatency, RelativeCostsSane)
{
    EXPECT_LT(baseLatency(Opcode::Add), baseLatency(Opcode::Mul));
    EXPECT_LT(baseLatency(Opcode::Mul), baseLatency(Opcode::Div));
    EXPECT_GT(baseLatency(Opcode::CmpXchg), baseLatency(Opcode::Ld));
}

TEST(IsaNames, AllOpcodesNamed)
{
    for (unsigned op = 0;
         op < static_cast<unsigned>(Opcode::NumOpcodes); ++op) {
        EXPECT_STRNE(opcodeName(static_cast<Opcode>(op)), "???");
    }
}

TEST(IsaDisasm, RendersRepresentativeForms)
{
    Instruction movi{Opcode::MovI, 3, 0, 0, 0, 42};
    EXPECT_EQ(disassemble(movi), "movi r3, 42");
    Instruction ld{Opcode::Ld, 2, 5, 0, 8, 16};
    EXPECT_EQ(disassemble(ld), "ld8 r2, [r5+16]");
    Instruction sig{Opcode::Signal, 3, 1, 2, 0, 0};
    EXPECT_EQ(disassemble(sig), "signal sid=r1, eip=r2, esp=r3");
}

// ---------------------------------------------------------------------
// ProgramBuilder
// ---------------------------------------------------------------------

TEST(ProgramBuilder, ResolvesForwardLabels)
{
    ProgramBuilder b;
    auto target = b.newLabel();
    b.jmp(target);    // forward reference
    b.nop();
    b.bind(target);
    b.halt();
    Program prog = b.finish(0x1000);
    ASSERT_EQ(prog.insts.size(), 3u);
    EXPECT_EQ(prog.insts[0].op, Opcode::Jmp);
    EXPECT_EQ(prog.insts[0].imm, 0x1000u + 2 * kInstBytes);
}

TEST(ProgramBuilder, UnboundLabelIsError)
{
    ProgramBuilder b;
    auto missing = b.newLabel();
    b.jmp(missing);
    EXPECT_THROW(b.finish(0x1000), SimError);
}

TEST(ProgramBuilder, DoubleBindIsError)
{
    ProgramBuilder b;
    auto l = b.newLabel();
    b.bind(l);
    EXPECT_THROW(b.bind(l), SimError);
}

TEST(ProgramBuilder, ExportsSymbols)
{
    ProgramBuilder b;
    b.nop();
    b.exportHere("entry");
    b.halt();
    Program prog = b.finish(0x2000);
    EXPECT_EQ(prog.symbol("entry"), 0x2000u + kInstBytes);
    EXPECT_THROW(prog.symbol("missing"), SimError);
}

TEST(ProgramBuilder, LeaLabelLoadsAbsoluteAddress)
{
    ProgramBuilder b;
    auto fn = b.newLabel();
    b.leaLabel(4, fn);
    b.halt();
    b.bind(fn);
    b.ret();
    Program prog = b.finish(0x3000);
    EXPECT_EQ(prog.insts[0].op, Opcode::MovI);
    EXPECT_EQ(prog.insts[0].imm, 0x3000u + 2 * kInstBytes);
}

TEST(ProgramBuilder, BytesMatchEncodedInstructions)
{
    ProgramBuilder b;
    b.movi(1, 7);
    b.addi(2, 1, 3);
    Program prog = b.finish(0x1000);
    auto bytes = prog.bytes();
    ASSERT_EQ(bytes.size(), 2 * kInstBytes);
    Instruction out;
    ASSERT_TRUE(decode(bytes.data(), &out));
    EXPECT_EQ(out.op, Opcode::MovI);
    EXPECT_EQ(out.imm, 7u);
}

// ---------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------

TEST(Assembler, AssemblesBasicProgram)
{
    Program prog = assemble(R"(
        ; a tiny program
        main:
            movi r1, 10
            movi r2, 0x20
            add  r3, r1, r2
            halt
    )",
                            0x1000);
    ASSERT_EQ(prog.insts.size(), 4u);
    EXPECT_EQ(prog.symbol("main"), 0x1000u);
    EXPECT_EQ(prog.insts[1].imm, 0x20u);
    EXPECT_EQ(prog.insts[2].op, Opcode::Add);
}

TEST(Assembler, MemoryOperandsAndSizes)
{
    Program prog = assemble(R"(
        ld8 r1, [r2+8]
        ld1 r3, [r4]
        st4 [r5-4], r6
    )",
                            0);
    EXPECT_EQ(prog.insts[0].sub, 8);
    EXPECT_EQ(prog.insts[0].imm, 8u);
    EXPECT_EQ(prog.insts[1].sub, 1);
    EXPECT_EQ(prog.insts[2].op, Opcode::St);
    EXPECT_EQ(static_cast<std::int64_t>(prog.insts[2].imm), -4);
}

TEST(Assembler, ForwardAndBackwardBranches)
{
    Program prog = assemble(R"(
        start:
            cmpi r1, 5
            jcc.ge end
            addi r1, r1, 1
            jmp start
        end:
            halt
    )",
                            0x4000);
    EXPECT_EQ(prog.insts[1].imm, 0x4000u + 4 * kInstBytes); // -> end
    EXPECT_EQ(prog.insts[3].imm, 0x4000u);                  // -> start
}

TEST(Assembler, MispExtensionInstructions)
{
    Program prog = assemble(R"(
        init:
            semonitor proxy, handler
            signal r1, r2, r3
            halt
        handler:
            yret
    )",
                            0);
    EXPECT_EQ(prog.insts[0].op, Opcode::Semonitor);
    EXPECT_EQ(prog.insts[0].sub,
              static_cast<std::uint8_t>(Scenario::ProxyRequest));
    EXPECT_EQ(prog.insts[0].imm, 3u * kInstBytes);
    EXPECT_EQ(prog.insts[1].op, Opcode::Signal);
    EXPECT_EQ(prog.insts[3].op, Opcode::Yret);
}

TEST(Assembler, AtomicsAndRuntimeCalls)
{
    Program prog = assemble(R"(
        fetchadd r1, [r2], r3
        cmpxchg r4, [r5], r6
        xchg r7, [r8]
        rtcall 7
        syscall 3
        compute 100
        pause
    )",
                            0);
    EXPECT_EQ(prog.insts[0].op, Opcode::FetchAdd);
    EXPECT_EQ(prog.insts[1].op, Opcode::CmpXchg);
    EXPECT_EQ(prog.insts[2].op, Opcode::Xchg);
    EXPECT_EQ(prog.insts[3].imm, 7u);
    EXPECT_EQ(prog.insts[4].imm, 3u);
    EXPECT_EQ(prog.insts[5].imm, 100u);
}

TEST(Assembler, SpAlias)
{
    Program prog = assemble("mov r1, sp\n", 0);
    EXPECT_EQ(prog.insts[0].rs1, kRegSp);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop\nbogus r1\n", 0);
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    }
}

TEST(Assembler, UnknownLabelReportsError)
{
    EXPECT_THROW(assemble("jmp nowhere\n", 0), AsmError);
}

TEST(Assembler, OperandCountValidation)
{
    EXPECT_THROW(assemble("add r1, r2\n", 0), AsmError);
    EXPECT_THROW(assemble("movi r1\n", 0), AsmError);
    EXPECT_THROW(assemble("halt r1\n", 0), AsmError);
}
