/**
 * @file
 * Invariants of the fixed-slot stub-library ABI — the mechanism behind
 * the Table-2 porting story. If any of these break, "porting is a
 * relink" stops being true.
 */

#include <gtest/gtest.h>

#include "shredlib/stub_library.hh"

using namespace misp;
using namespace misp::rt;

namespace {

const std::vector<std::string> kRequiredSymbols = {
    "rt_init",      "proxy_stub",   "ams_entry",   "shred_done",
    "shred_create", "join_all",     "shred_self",  "yield",
    "mutex_lock",   "mutex_unlock", "barrier_wait", "sem_wait",
    "sem_post",     "cond_wait",    "cond_signal", "cond_broadcast",
    "event_wait",   "event_set",    "malloc",      "prefault",
    "exit_process", "log_write",
};

} // namespace

TEST(StubAbi, BothBackendsExportAllSymbols)
{
    for (Backend backend : {Backend::Shred, Backend::OsThread}) {
        isa::Program prog = buildStubLibrary(backend);
        for (const std::string &name : kRequiredSymbols) {
            EXPECT_NO_THROW((void)prog.symbol(name))
                << name << " missing from " << backendName(backend);
        }
    }
}

TEST(StubAbi, SymbolAddressesIdenticalAcrossBackends)
{
    isa::Program shred = buildStubLibrary(Backend::Shred);
    isa::Program osLib = buildStubLibrary(Backend::OsThread);
    EXPECT_EQ(shred.symbols, osLib.symbols);
}

TEST(StubAbi, SymbolsLieOnFixedSlots)
{
    isa::Program prog = buildStubLibrary(Backend::Shred);
    constexpr std::uint64_t kSlotBytes = 8 * isa::kInstBytes;
    for (const auto &[name, addr] : prog.symbols) {
        EXPECT_EQ((addr - kStubBase) % kSlotBytes, 0u)
            << name << " not slot-aligned";
    }
}

TEST(StubAbi, BaseAddressIsStable)
{
    isa::Program prog = buildStubLibrary(Backend::Shred);
    EXPECT_EQ(prog.base, kStubBase);
    EXPECT_EQ(prog.symbol("rt_init"), kStubBase);
}

TEST(StubAbi, ShredInitRegistersProxyHandler)
{
    isa::Program prog = buildStubLibrary(Backend::Shred);
    // First instruction of rt_init must be the architectural SEMONITOR
    // registering proxy_stub for the ProxyRequest scenario (§2.5).
    const isa::Instruction &first = prog.insts[0];
    EXPECT_EQ(first.op, isa::Opcode::Semonitor);
    EXPECT_EQ(first.sub, static_cast<std::uint8_t>(
                             isa::Scenario::ProxyRequest));
    EXPECT_EQ(first.imm, prog.symbol("proxy_stub"));
}

TEST(StubAbi, OsBackendUsesRealSyscalls)
{
    isa::Program prog = buildStubLibrary(Backend::OsThread);
    // The OS backend's yield and exit_process must trap into the kernel
    // (that asymmetry is what the SMP baseline pays for).
    auto instAt = [&](VAddr addr) {
        return prog.insts[(addr - prog.base) / isa::kInstBytes];
    };
    EXPECT_EQ(instAt(prog.symbol("yield")).op, isa::Opcode::Syscall);
    EXPECT_EQ(instAt(prog.symbol("exit_process")).op,
              isa::Opcode::Syscall);

    isa::Program shred = buildStubLibrary(Backend::Shred);
    auto shredInstAt = [&](VAddr addr) {
        return shred.insts[(addr - shred.base) / isa::kInstBytes];
    };
    EXPECT_EQ(shredInstAt(shred.symbol("yield")).op, isa::Opcode::RtCall);
    EXPECT_EQ(shredInstAt(shred.symbol("exit_process")).op,
              isa::Opcode::RtCall);
}

TEST(StubAbi, SyncWrappersTouchTheirWord)
{
    // Lock-class stubs must load the sync word before the service call,
    // so its page demand-faults through the architectural path.
    for (Backend backend : {Backend::Shred, Backend::OsThread}) {
        isa::Program prog = buildStubLibrary(backend);
        for (const char *sym : {"mutex_lock", "barrier_wait", "sem_wait",
                                "cond_wait", "event_wait"}) {
            VAddr addr = prog.symbol(sym);
            const isa::Instruction &first =
                prog.insts[(addr - prog.base) / isa::kInstBytes];
            EXPECT_EQ(first.op, isa::Opcode::Ld)
                << sym << " on " << backendName(backend);
            EXPECT_EQ(first.rs1, 0u) << "touch must read [r0]";
        }
    }
}

TEST(StubAbi, StubsFitWithinOnePage)
{
    for (Backend backend : {Backend::Shred, Backend::OsThread}) {
        isa::Program prog = buildStubLibrary(backend);
        EXPECT_LE(prog.byteSize(), 4096u)
            << backendName(backend)
            << " stub library must stay one page (one compulsory fault)";
    }
}
