/**
 * @file
 * Parameterized end-to-end sweep: every workload in the paper's suite
 * must run to completion and produce the host-validated result on the
 * MISP machine, plus cross-backend and property checks.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "workloads/workload.hh"

using namespace misp;

namespace {

struct RunOut {
    Tick ticks = 0;
    bool valid = false;
    std::uint64_t proxies = 0;
};

RunOut
runWorkload(const wl::WorkloadInfo &info, const arch::SystemConfig &cfg,
            rt::Backend backend, const wl::WorkloadParams &params)
{
    wl::Workload w = info.build(params);
    harness::Experiment exp(cfg, backend);
    auto proc = exp.load(w.app);
    RunOut out;
    out.ticks = exp.runToCompletion(proc.process).ticks;
    out.valid =
        !w.validate || w.validate(proc.process->addressSpace());
    out.proxies = static_cast<std::uint64_t>(
        exp.system().processor(0).statGroup().lookupValue(
            "proxyRequests"));
    return out;
}

class WorkloadSweep
    : public ::testing::TestWithParam<const wl::WorkloadInfo *>
{};

std::string
workloadName(
    const ::testing::TestParamInfo<const wl::WorkloadInfo *> &info)
{
    return info.param->name;
}

std::vector<const wl::WorkloadInfo *>
allInfos()
{
    std::vector<const wl::WorkloadInfo *> out;
    for (const wl::WorkloadInfo &info : wl::allWorkloads())
        out.push_back(&info);
    return out;
}

} // namespace

TEST_P(WorkloadSweep, CorrectOnMispUniprocessor)
{
    wl::WorkloadParams params;
    params.workers = 7;
    RunOut out = runWorkload(*GetParam(),
                             arch::SystemConfig::uniprocessor(7),
                             rt::Backend::Shred, params);
    ASSERT_GT(out.ticks, 0u);
    EXPECT_TRUE(out.valid);
}

TEST_P(WorkloadSweep, DeterministicAcrossRuns)
{
    wl::WorkloadParams params;
    params.workers = 3;
    arch::SystemConfig cfg = arch::SystemConfig::uniprocessor(3);
    RunOut a = runWorkload(*GetParam(), cfg, rt::Backend::Shred, params);
    RunOut b = runWorkload(*GetParam(), cfg, rt::Backend::Shred, params);
    ASSERT_GT(a.ticks, 0u);
    // Bit-identical simulation: same seed, same config => same tick.
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.proxies, b.proxies);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweep,
                         ::testing::ValuesIn(allInfos()), workloadName);

// ---------------------------------------------------------------------
// Cross-cutting properties on a representative subset
// ---------------------------------------------------------------------

class WorkloadProperties
    : public ::testing::TestWithParam<const wl::WorkloadInfo *>
{};

std::vector<const wl::WorkloadInfo *>
subsetInfos()
{
    std::vector<const wl::WorkloadInfo *> out;
    for (const char *name :
         {"dense_mvm", "kmeans", "sparse_mvm_trans", "Raytracer",
          "galgel"}) {
        out.push_back(wl::findWorkload(name));
    }
    return out;
}

TEST_P(WorkloadProperties, CorrectOnSmpBaseline)
{
    wl::WorkloadParams params;
    params.workers = 7;
    RunOut out = runWorkload(
        *GetParam(), arch::SystemConfig::mp({0, 0, 0, 0, 0, 0, 0, 0}),
        rt::Backend::OsThread, params);
    ASSERT_GT(out.ticks, 0u);
    EXPECT_TRUE(out.valid);
}

TEST_P(WorkloadProperties, CorrectWithOneWorker)
{
    wl::WorkloadParams params;
    params.workers = 1;
    RunOut out = runWorkload(*GetParam(),
                             arch::SystemConfig::uniprocessor(1),
                             rt::Backend::Shred, params);
    ASSERT_GT(out.ticks, 0u);
    EXPECT_TRUE(out.valid);
}

TEST_P(WorkloadProperties, ParallelismHelps)
{
    wl::WorkloadParams params;
    params.workers = 7;
    RunOut par = runWorkload(*GetParam(),
                             arch::SystemConfig::uniprocessor(7),
                             rt::Backend::Shred, params);
    RunOut ser = runWorkload(*GetParam(), arch::SystemConfig::mp({0}),
                             rt::Backend::OsThread, params);
    ASSERT_GT(par.ticks, 0u);
    ASSERT_GT(ser.ticks, 0u);
    double speedup = double(ser.ticks) / double(par.ticks);
    EXPECT_GT(speedup, 4.0) << "8 sequencers should speed up >4x";
    EXPECT_LT(speedup, 8.5) << "speedup cannot exceed sequencer count";
}

TEST_P(WorkloadProperties, PrefaultEliminatesProxyPageFaults)
{
    const wl::WorkloadInfo *info = GetParam();
    if (std::string(info->name) == "kmeans" ||
        info->name == std::string("galgel")) {
        GTEST_SKIP() << "serial-init workloads fault on the OMS anyway";
    }
    wl::WorkloadParams off;
    off.workers = 7;
    wl::WorkloadParams on = off;
    on.prefault = true;
    RunOut roff = runWorkload(*info, arch::SystemConfig::uniprocessor(7),
                              rt::Backend::Shred, off);
    RunOut ron = runWorkload(*info, arch::SystemConfig::uniprocessor(7),
                             rt::Backend::Shred, on);
    if (info->name == std::string("dense_mvm") ||
        info->name == std::string("sparse_mvm_trans")) {
        EXPECT_LT(ron.proxies, roff.proxies);
    }
    EXPECT_TRUE(ron.valid);
}

INSTANTIATE_TEST_SUITE_P(Subset, WorkloadProperties,
                         ::testing::ValuesIn(subsetInfos()),
                         workloadName);
