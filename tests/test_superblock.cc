/**
 * @file
 * Differential fuzzing of the superblock-chained execution engine.
 *
 * An execution engine is a host-side optimization only: for any guest
 * program, the reference interpreter, the predecoded-block cache, and
 * the chained-superblock engine must produce tick-for-tick identical
 * machine state. This suite generates seeded random guest programs —
 * branches (static, conditional, indirect), aligned loads/stores of
 * every size, bounded loops, page-crossing straight runs,
 * self-modifying stores into the program's own code pages, RTCALLs,
 * and stack traffic — and fails on the first observable divergence
 * between the three engines: final tick, retired/busy counts, every
 * architectural register, and the TLB's hit/miss/walk statistics.
 *
 * A second pass replays a seed subset with a host-side poke schedule:
 * the machine runs to a fixed tick, the host rewrites a code page (the
 * loader/runtime path, which also exercises mapping-change
 * invalidation), and the run resumes. Engines are tick-identical, so
 * the poke lands at the same logical point under each one.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cpu/decode_cache.hh"
#include "cpu/sequencer.hh"
#include "harness/bare_machine.hh"
#include "isa/assembler.hh"
#include "mem/address_space.hh"

using namespace misp;

namespace {

/** Deterministic 64-bit generator (splitmix64): identical streams on
 *  every platform, unlike <random> distributions. */
struct Rng {
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed + 0x9e3779b97f4a7c15ull) {}
    std::uint64_t
    next()
    {
        std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
    /** Uniform in [0, n). */
    std::uint64_t pick(std::uint64_t n) { return next() % n; }
};

/** Scratch registers the generator is allowed to clobber. r1 is the
 *  outer loop counter, r2 the data base, r10..r13 are reserved for
 *  generated control (inner counters, indirect targets, SMC), r14 is
 *  the SMC accumulator, and r15 is the architectural stack pointer
 *  (push/pop chunks would fault through a clobbered one). */
unsigned
scratchReg(Rng &rng)
{
    static const unsigned kScratch[] = {3, 4, 5, 6, 7, 8, 9};
    return kScratch[rng.pick(sizeof(kScratch) / sizeof(kScratch[0]))];
}

const char *kConds[] = {"eq", "ne", "lt", "le", "gt", "ge", "ult",
                        "uge"};

void
emitAlu(std::string &src, Rng &rng)
{
    const unsigned rd = scratchReg(rng);
    const unsigned rs = scratchReg(rng);
    const unsigned rt = scratchReg(rng);
    char buf[96];
    switch (rng.pick(10)) {
      case 0:
        std::snprintf(buf, sizeof buf, "    addi r%u, r%u, %llu\n", rd,
                      rs, (unsigned long long)rng.pick(1000));
        break;
      case 1:
        std::snprintf(buf, sizeof buf, "    add r%u, r%u, r%u\n", rd,
                      rs, rt);
        break;
      case 2:
        std::snprintf(buf, sizeof buf, "    sub r%u, r%u, r%u\n", rd,
                      rs, rt);
        break;
      case 3:
        std::snprintf(buf, sizeof buf, "    muli r%u, r%u, %llu\n", rd,
                      rs, (unsigned long long)(1 + rng.pick(13)));
        break;
      case 4:
        std::snprintf(buf, sizeof buf, "    xori r%u, r%u, %llu\n", rd,
                      rs, (unsigned long long)rng.pick(0xffff));
        break;
      case 5:
        std::snprintf(buf, sizeof buf, "    andi r%u, r%u, %llu\n", rd,
                      rs, (unsigned long long)rng.pick(0xffff));
        break;
      case 6:
        std::snprintf(buf, sizeof buf, "    ori r%u, r%u, %llu\n", rd,
                      rs, (unsigned long long)rng.pick(0xffff));
        break;
      case 7:
        std::snprintf(buf, sizeof buf, "    shli r%u, r%u, %llu\n", rd,
                      rs, (unsigned long long)rng.pick(8));
        break;
      case 8:
        std::snprintf(buf, sizeof buf, "    shri r%u, r%u, %llu\n", rd,
                      rs, (unsigned long long)rng.pick(8));
        break;
      default:
        std::snprintf(buf, sizeof buf, "    movi r%u, %llu\n", rd,
                      (unsigned long long)rng.pick(100000));
        break;
    }
    src += buf;
}

void
emitMem(std::string &src, Rng &rng)
{
    // Aligned access inside the first three pages of the writable data
    // region at 0x10'0000 (the machine's stack lives pages above; r2
    // holds the base). Misaligned or unmapped accesses would kill the
    // bare machine, so the generator never produces them.
    static const unsigned kSizes[] = {1, 2, 4, 8};
    const unsigned size = kSizes[rng.pick(4)];
    const std::uint64_t off =
        rng.pick((3 * 4096) / size) * size; // size-aligned
    const unsigned rv = scratchReg(rng);
    char buf[96];
    if (rng.pick(2) == 0)
        std::snprintf(buf, sizeof buf, "    ld%u r%u, [r2+%llu]\n",
                      size, rv, (unsigned long long)off);
    else
        std::snprintf(buf, sizeof buf, "    st%u [r2+%llu], r%u\n",
                      size, (unsigned long long)off, rv);
    src += buf;
}

/** One seeded random program. Control flow is forward-only except for
 *  bounded counted loops, so every program halts. */
std::string
genProgram(std::uint64_t seed)
{
    Rng rng(seed);
    std::string src = "main:\n"
                      "    movi r1, 0\n"
                      "    movi r2, 0x100000\n"
                      "outer:\n";
    int label = 0;
    const int chunks = 4 + (int)rng.pick(5);
    for (int c = 0; c < chunks; ++c) {
        char buf[128];
        switch (rng.pick(8)) {
          case 0: { // straight ALU run (long ones cross a page: a
                    // 4 KiB page holds 256 instruction bundles)
            const int n = rng.pick(6) == 0 ? 280 + (int)rng.pick(80)
                                           : 4 + (int)rng.pick(30);
            for (int i = 0; i < n; ++i)
                emitAlu(src, rng);
            break;
          }
          case 1: { // memory run
            const int n = 2 + (int)rng.pick(8);
            for (int i = 0; i < n; ++i)
                emitMem(src, rng);
            break;
          }
          case 2: { // bounded inner loop (never nested)
            const int id = label++;
            std::snprintf(buf, sizeof buf,
                          "    movi r10, 0\nl%d:\n", id);
            src += buf;
            const int body = 1 + (int)rng.pick(6);
            for (int i = 0; i < body; ++i)
                (rng.pick(3) == 0 ? emitMem : emitAlu)(src, rng);
            std::snprintf(buf, sizeof buf,
                          "    addi r10, r10, 1\n"
                          "    cmpi r10, %d\n"
                          "    jcc.lt l%d\n",
                          2 + (int)rng.pick(5), id);
            src += buf;
            break;
          }
          case 3: { // conditional forward skip
            const int id = label++;
            std::snprintf(buf, sizeof buf,
                          "    cmp r%u, r%u\n    jcc.%s l%d\n",
                          scratchReg(rng), scratchReg(rng),
                          kConds[rng.pick(8)], id);
            src += buf;
            const int n = 1 + (int)rng.pick(10);
            for (int i = 0; i < n; ++i)
                emitAlu(src, rng);
            std::snprintf(buf, sizeof buf, "l%d:\n", id);
            src += buf;
            break;
          }
          case 4: { // indirect forward jump (never chain-linked)
            const int id = label++;
            std::snprintf(buf, sizeof buf,
                          "    movi r11, l%d\n    jmp r11\n", id);
            src += buf;
            for (int i = 0; i < 1 + (int)rng.pick(4); ++i)
                emitAlu(src, rng);
            std::snprintf(buf, sizeof buf, "l%d:\n", id);
            src += buf;
            break;
          }
          case 5: // environment call (a Slow-class serialization point)
            std::snprintf(buf, sizeof buf, "    rtcall %llu\n",
                          (unsigned long long)rng.pick(8));
            src += buf;
            break;
          case 6: { // self-modifying store into the patch target's
                    // immediate field (bytes 8..15 of its bundle)
            std::snprintf(buf, sizeof buf,
                          "    movi r12, patch\n"
                          "    addi r12, r12, 8\n"
                          "    movi r13, %llu\n"
                          "    st8 [r12+0], r13\n",
                          (unsigned long long)rng.pick(100000));
            src += buf;
            break;
          }
          default: { // stack traffic through the Mem-class slow path
            const unsigned rv = scratchReg(rng);
            std::snprintf(buf, sizeof buf,
                          "    push r%u\n    pop r%u\n", rv,
                          scratchReg(rng));
            src += buf;
            break;
          }
        }
    }
    // The SMC patch target: every outer iteration executes whatever
    // immediate the last chunk-6 store left here.
    src += "patch:\n"
           "    movi r13, 7\n"
           "    add r14, r14, r13\n";
    char tail[96];
    std::snprintf(tail, sizeof tail,
                  "    addi r1, r1, 1\n"
                  "    cmpi r1, %d\n"
                  "    jcc.lt outer\n"
                  "    halt\n",
                  2 + (int)rng.pick(3));
    src += tail;
    return src;
}

struct FuzzMachine : harness::BareMachine {
    FuzzMachine(const std::string &src, cpu::Engine engine)
        : harness::BareMachine(src, engine, /*writableCode=*/true)
    {}
};

struct Observed {
    Tick ticks = 0;
    Tick busy = 0;
    std::uint64_t retired = 0;
    std::uint64_t tlbHits = 0;
    std::uint64_t tlbMisses = 0;
    std::uint64_t walks = 0;
    Word regs[isa::kNumRegs] = {};

    static Observed
    of(harness::BareMachine &m)
    {
        Observed o;
        o.ticks = m.eq.curTick();
        o.busy = m.seq.busyCycles();
        o.retired = m.seq.instsRetired();
        o.tlbHits = m.seq.mmu().tlb().hits();
        o.tlbMisses = m.seq.mmu().tlb().misses();
        o.walks = m.seq.mmu().pageWalks();
        for (unsigned r = 0; r < isa::kNumRegs; ++r)
            o.regs[r] = m.seq.context().regs[r];
        return o;
    }
};

void
expectIdentical(const Observed &ref, const Observed &got,
                cpu::Engine engine, std::uint64_t seed)
{
    const char *en = cpu::engineName(engine);
    EXPECT_EQ(got.ticks, ref.ticks) << en << " seed " << seed;
    EXPECT_EQ(got.busy, ref.busy) << en << " seed " << seed;
    EXPECT_EQ(got.retired, ref.retired) << en << " seed " << seed;
    EXPECT_EQ(got.tlbHits, ref.tlbHits) << en << " seed " << seed;
    EXPECT_EQ(got.tlbMisses, ref.tlbMisses) << en << " seed " << seed;
    EXPECT_EQ(got.walks, ref.walks) << en << " seed " << seed;
    for (unsigned r = 0; r < isa::kNumRegs; ++r)
        EXPECT_EQ(got.regs[r], ref.regs[r])
            << en << " seed " << seed << " r" << r;
}

} // namespace

TEST(SuperblockFuzz, EnginesBitIdenticalOver128Seeds)
{
    for (std::uint64_t seed = 1; seed <= 128; ++seed) {
        const std::string src = genProgram(seed);
        FuzzMachine ref(src, cpu::Engine::Reference);
        ref.run();
        // A generated program must actually run to completion (a
        // killed or dead seed would silently weaken the fuzzer; the
        // smallest possible program retires ~20 instructions).
        ASSERT_GT(ref.seq.instsRetired(), 15u)
            << "seed " << seed << "\n"
            << src;
        const Observed want = Observed::of(ref);
        for (cpu::Engine engine :
             {cpu::Engine::Cache, cpu::Engine::Superblock}) {
            FuzzMachine m(src, engine);
            m.run();
            expectIdentical(want, Observed::of(m), engine, seed);
        }
        if (HasFailure())
            break; // the seed is in the failure output; stop the flood
    }
}

TEST(SuperblockFuzz, HostPokeScheduleBitIdentical)
{
    // Mid-run host pokes: run to a tick, rewrite the patch target's
    // immediate from the host side (the loader/runtime path), resume.
    // Tick-identical engines see the poke at the same logical point.
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        const std::string src = genProgram(seed);
        Observed want;
        bool haveRef = false;
        for (cpu::Engine engine :
             {cpu::Engine::Reference, cpu::Engine::Cache,
              cpu::Engine::Superblock}) {
            FuzzMachine m(src, engine);
            m.start();
            const VAddr patchImm = m.prog.symbol("patch") + 8;
            for (Tick at = 4000; at <= 20000; at += 4000) {
                m.eq.run(at);
                m.as.pokeWord(patchImm, 1000 + at, 8);
            }
            m.eq.run();
            if (!haveRef) {
                want = Observed::of(m);
                haveRef = true;
            } else {
                expectIdentical(want, Observed::of(m), engine, seed);
            }
        }
        if (HasFailure())
            break;
    }
}

TEST(SuperblockFuzz, SuperblockEngineActuallyEngages)
{
    // Guard against the fuzzer silently testing nothing: under the
    // superblock engine the generated programs must hit the decoded-
    // block fast path.
    const std::string src = genProgram(7);
    FuzzMachine m(src, cpu::Engine::Superblock);
    m.run();
    EXPECT_GT(m.seq.decodeCacheHits(), 0u);
    EXPECT_GT(m.as.decodeCache().pagesDecoded(), 0u);
}
