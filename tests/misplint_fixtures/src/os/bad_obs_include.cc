// Fixture: simulated code reaching into the obs host plane. The
// deterministic trace API (obs/trace.hh) is the only observability
// surface the model may include.

#include "obs/host_run_log.hh"
#include "obs/trace.hh"
