// Fixture: tag table for the snap-tag-codec rule. Expected findings:
//   line 9:  snap-tag-codec (kNoCodec)    — no restore codec
//   line 10: snap-tag-codec (kNoProducer) — never produced
//   line 11: snap-tag-codec (kDupValue)   — reuses kGood's value 1
namespace tag {

enum : unsigned {
    kGood = 1,
    kNoCodec = 2,
    kNoProducer = 3,
    kDupValue = 1,
};

} // namespace tag
