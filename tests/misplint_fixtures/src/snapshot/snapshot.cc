// Fixture: restore-codec side of the tag fixtures. A reference in
// this file (and only this file) counts as the restore codec for a
// tag; kGood, kNoProducer, and kDupValue have one, kNoCodec does not.
int
restoreEvent(unsigned k)
{
    switch (k) {
    case tag::kGood:
        return 1;
    case tag::kNoProducer:
        return 2;
    case tag::kDupValue:
        return 3;
    }
    return 0;
}
