// Fixture: host-clock tokens outside the allowlisted wall-clock
// sites. src/driver/ is not a simulated dir, but it emits
// deterministic artifacts — the det-time scan covers all of src/.

void
timeThings()
{
    gettimeofday(nullptr, nullptr);
    getrusage(0, nullptr);
    long t = clock();
    (void)t;
}
