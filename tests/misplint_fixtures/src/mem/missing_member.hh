// Fixture: snapshot-completeness rules over a Saveable-shaped class.
// Expected findings:
//   line 17: snap-save-missing    (lostBoth_)
//   line 17: snap-restore-missing (lostBoth_)
//   line 18: snap-restore-missing (saveOnly_)
//   line 20: snap-bad-annotation  (badKind_)
struct Widget {
    void snapSave(Ser &s) const
    {
        s.put(kept_);
        s.put(saveOnly_);
    }
    void snapRestore(Des &d) { d.get(kept_); }

    Ser &wiring_;
    int kept_ = 0;
    int lostBoth_ = 0;
    int saveOnly_ = 0;
    // snap: bogus — not one of the six known kinds
    int badKind_ = 0;
};
