// Fixture: a fully annotated Saveable-shaped class — must be clean.
// Exercises every annotation placement the grammar allows: trailing
// doc comment, and an inner line of a multi-line block comment.
struct Cache {
    void snapSave(Ser &s) const { s.put(mode_); }
    void snapRestore(Des &d) { d.get(mode_); }

    int mode_ = 0;
    int window_ = 0;    ///< snap: derived — rebuilt lazily on demand
    int hostTicks_ = 0; ///< snap: host-only
    /**
     * Multi-line doc comment carrying the annotation on an inner
     * line, not the one directly above the declaration.
     * snap: config
     */
    int ways_ = 4;
    int drained_ = 0; ///< snap: quiesced
};
