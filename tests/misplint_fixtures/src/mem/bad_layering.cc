// Fixture: model layer reaching into the host-side run layer, plus
// the <chrono> include gate. Expected findings:
//   line 6: layer-include (driver/runner.hh)
//   line 7: layer-include (harness/run_record.hh)
//   line 8: det-time      (chrono)
#include "driver/runner.hh"
#include "harness/run_record.hh"
#include <chrono>

int
layeringFixture()
{
    return 0;
}
