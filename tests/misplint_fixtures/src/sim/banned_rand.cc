// Fixture: determinism-hygiene violations in simulated code.
// Expected findings (exact lines are asserted by test_misplint):
//   line 12: det-rand  (rand)
//   line 13: det-rand  (srand)
//   line 15: det-rand  (random_device)
//   line 18: det-time  (time)
//   line 19: det-time  (clock)
//   line 21: det-time  (chrono)
int
badEntropy()
{
    int x = rand();
    srand(42);
    // std::random_device mentioned in a comment must NOT fire.
    std::random_device rd;
    (void)rd;
    // Wall-clock reads:
    long t = time(nullptr);
    long c = clock();
    (void)c;
    auto tp = std::chrono::steady_clock::now();
    (void)tp;
    return x + static_cast<int>(t);
}
