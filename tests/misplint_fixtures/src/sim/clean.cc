// Fixture: a clean simulated-layer file — zero findings expected.
// Doubles as the producer site for the tag fixtures (kGood, kNoCodec,
// kDupValue are emitted from here; kNoProducer deliberately is not).
// Mentioning rand() or time() in a comment must not fire.
int
emitEvents(Recorder &r)
{
    r.emit(tag::kGood);
    r.emit(tag::kNoCodec);
    r.emit(tag::kDupValue);
    // A value-keyed ordered map iterates deterministically:
    std::map<int, int> hist;
    for (const auto &kv : hist) {
        (void)kv;
    }
    return 0;
}
