// Fixture: hash-order and pointer-key iteration hazards.
// Expected findings (lines asserted by test_misplint):
//   line 9:  det-ptr-key        (std::map)
//   line 13: det-unordered-iter (table_)
//   line 20: det-unordered-iter (table_) — .begin() form
//   line 26: suppressed via misplint: allow — no finding
struct HashEmitter {
    std::unordered_map<int, int> table_;
    std::map<HashEmitter *, int> byOwner_;

    int sum() const
    {
        for (const auto &kv : table_) {
            (void)kv;
        }
        return 0;
    }
    int first() const
    {
        return table_.begin()->second;
    }
    int sortedDump() const
    {
        // Deliberate: this site copies into a sorted vector before
        // emitting, so hash order never reaches the output.
        // misplint: allow(det-unordered-iter) sorted into ids below
        for (const auto &kv : table_) {
            (void)kv;
        }
        return 1;
    }
};
