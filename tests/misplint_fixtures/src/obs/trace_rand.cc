// Fixture: src/obs/ outside the host_ prefix is simulated code — the
// trace recorder observes model events, so the hygiene rules apply.

int
draw()
{
    return rand();
}
