// Fixture: the quarantined obs host plane — the `host_` file prefix —
// may use the wall clock freely; it never feeds simulated state.

#include <chrono>

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}
