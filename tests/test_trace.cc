/**
 * @file
 * Observability subsystem tests.
 *
 * Plane 1 (deterministic trace): recorder semantics against a real
 * EventQueue (base cursor, category filter, bounded buffer with drop
 * accounting, marker bypass), the category grammar, the [trace] spec
 * section, and the determinism contract end-to-end — byte-identical
 * Chrome traces across all three engines, across --jobs/--isolate
 * topologies, across a plain run vs a save leg, and a snapshot-restored
 * run vs a cold run with --trace-skip at the restore cursor. The
 * RunRecord wire codec round-trips the trace and fails closed.
 *
 * Plane 2 (host telemetry): the supervisor run log under chaos — every
 * launch attempt emits exactly one `dispatched` line, so the log's
 * dispatch count must equal the sum of RunRecord::attempts.
 *
 * Plus the CLI-surface audit: --help is rendered from the flag/exit
 * code registries, and every registered name must appear in it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/cli_help.hh"
#include "driver/faults.hh"
#include "driver/runner.hh"
#include "harness/run_record.hh"
#include "obs/host_run_log.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "snapshot/snapshot.hh"

using namespace misp;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuietLogging(true); }
};

const ::testing::Environment *const kQuietEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

/** Render one point's buffer exactly as `mispsim --trace` would. */
std::string
render(const std::string &label, const obs::TraceBuffer &buf)
{
    std::ostringstream os;
    obs::writeChromeTrace(os, {{label, &buf}});
    return os.str();
}

/** The multi-shred request the snapshot tests use: big enough to
 *  exercise signals, scheduling, TLB traffic, and runtime calls. */
harness::RunRequest
tracedRequest()
{
    harness::RunRequest req;
    req.label = "trace_test";
    req.config = arch::SystemConfig::uniprocessor(3);
    req.config.physFrames = 1 << 16;
    req.backend = rt::Backend::Shred;
    req.target.name = "dense_mvm";
    req.target.params.workers = 3;
    req.hostLine = false;
    req.trace.enabled = true;
    return req;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Count occurrences of @p needle in @p hay. */
int
countOf(const std::string &hay, const std::string &needle)
{
    int n = 0;
    for (std::size_t at = hay.find(needle); at != std::string::npos;
         at = hay.find(needle, at + needle.size()))
        ++n;
    return n;
}

const char *kTraceScn = R"(
[scenario]
name = trace_test

[machine misp]
ams = 3
phys_frames = 65536

[workload]
name = dense_mvm

[sweep]
workload.workers = 1, 2, 3
)";

std::vector<driver::PointResult>
runScenario(const driver::RunnerOptions &opts,
            std::vector<driver::ScenarioPoint> *ptsOut = nullptr,
            const char *text = kTraceScn)
{
    driver::SpecFile spec;
    driver::Scenario sc;
    std::vector<driver::ScenarioPoint> pts;
    std::string err;
    EXPECT_TRUE(driver::SpecFile::parse(text, "<test>", &spec, &err))
        << err;
    EXPECT_TRUE(driver::Scenario::fromSpec(spec, &sc, &err)) << err;
    EXPECT_TRUE(sc.expandPoints(false, &pts, &err)) << err;
    if (ptsOut)
        *ptsOut = pts;
    return driver::ScenarioRunner(opts).runAll(sc, pts);
}

} // namespace

// ---------------------------------------------------------------------
// Recorder semantics against a real EventQueue
// ---------------------------------------------------------------------

TEST(TraceRecorder, SeqFollowsEventQueueAndBaseGates)
{
    EventQueue eq;
    obs::TraceConfig cfg;
    cfg.catMask = obs::kAllCats;
    obs::TraceRecorder rec(eq, cfg, /*base=*/3);

    for (int i = 1; i <= 6; ++i) {
        eq.scheduleLambda(i * 10, "emit", [&rec, i] {
            rec.record(obs::TraceKind::TlbFill, 0, 0, i);
        });
    }
    while (eq.step()) {
    }

    // numProcessed is incremented before an event's callback runs, so
    // the nth event records seq == n; a base of 3 keeps the first
    // three out (warmup suppression) with no drop accounting.
    const obs::TraceBuffer &buf = rec.buffer();
    ASSERT_EQ(buf.events.size(), 3u);
    EXPECT_EQ(buf.dropped, 0u);
    for (std::size_t i = 0; i < buf.events.size(); ++i) {
        EXPECT_EQ(buf.events[i].seq, 4 + i);
        EXPECT_EQ(buf.events[i].tick, (4 + i) * 10);
        EXPECT_EQ(buf.events[i].arg0, 4 + i);
    }
}

TEST(TraceRecorder, CategoryFilterIsNotDropAccounting)
{
    EventQueue eq;
    obs::TraceConfig cfg;
    cfg.catMask = obs::kCatSched; // TLB traffic filtered out
    obs::TraceRecorder rec(eq, cfg, 0);

    eq.scheduleLambda(5, "emit", [&rec] {
        rec.record(obs::TraceKind::TlbFill);
        rec.record(obs::TraceKind::KernelQuantum);
        rec.record(obs::TraceKind::RtcallEnter);
    });
    while (eq.step()) {
    }

    // Only the sched-category event lands; filtered events are not
    // "dropped" (that word is reserved for buffer overflow).
    ASSERT_EQ(rec.buffer().events.size(), 1u);
    EXPECT_EQ(rec.buffer().events[0].kind,
              static_cast<std::uint16_t>(obs::TraceKind::KernelQuantum));
    EXPECT_EQ(rec.buffer().dropped, 0u);
}

TEST(TraceRecorder, BufferBoundCountsOverflow)
{
    EventQueue eq;
    obs::TraceConfig cfg;
    cfg.catMask = obs::kAllCats;
    cfg.maxEvents = 4;
    obs::TraceRecorder rec(eq, cfg, 0);

    for (int i = 1; i <= 10; ++i) {
        eq.scheduleLambda(i, "emit", [&rec] {
            rec.record(obs::TraceKind::SignalSend);
        });
    }
    while (eq.step()) {
    }

    // First-N retention: the four earliest survive, the rest count.
    const obs::TraceBuffer &buf = rec.buffer();
    ASSERT_EQ(buf.events.size(), 4u);
    EXPECT_EQ(buf.dropped, 6u);
    EXPECT_EQ(buf.events.front().seq, 1u);
    EXPECT_EQ(buf.events.back().seq, 4u);
    EXPECT_EQ(buf.maxEvents, 4u);
}

TEST(TraceRecorder, MarkersBypassBaseButNotCategories)
{
    EventQueue eq;
    obs::TraceConfig cfg;
    cfg.catMask = obs::kAllCats;
    obs::TraceRecorder rec(eq, cfg, /*base=*/100);
    eq.scheduleLambda(5, "emit", [&rec] {
        rec.record(obs::TraceKind::TlbFill);                 // gated
        rec.recordMarker(obs::TraceKind::SnapshotRestore);   // not
    });
    while (eq.step()) {
    }
    ASSERT_EQ(rec.buffer().events.size(), 1u);
    EXPECT_EQ(
        rec.buffer().events[0].kind,
        static_cast<std::uint16_t>(obs::TraceKind::SnapshotRestore));

    // The default mask excludes the snapshot category, so the same
    // marker is invisible in a default-configured recorder.
    obs::TraceConfig defCfg;
    obs::TraceRecorder defRec(eq, defCfg, 100);
    defRec.recordMarker(obs::TraceKind::SnapshotRestore);
    EXPECT_TRUE(defRec.buffer().events.empty());
}

// ---------------------------------------------------------------------
// Category grammar + spec section
// ---------------------------------------------------------------------

TEST(TraceCats, ParseGrammar)
{
    std::uint32_t mask = 0;
    std::string err;
    EXPECT_TRUE(obs::parseTraceCats("all", &mask, &err));
    EXPECT_EQ(mask, obs::kAllCats);
    EXPECT_TRUE(obs::parseTraceCats("none", &mask, &err));
    EXPECT_EQ(mask, 0u);
    EXPECT_TRUE(obs::parseTraceCats("default", &mask, &err));
    EXPECT_EQ(mask, obs::kDefaultCats);
    EXPECT_TRUE(obs::parseTraceCats("signal,mem", &mask, &err));
    EXPECT_EQ(mask, obs::kCatSignal | obs::kCatMem);
    EXPECT_TRUE(obs::parseTraceCats("sched rtcall", &mask, &err));
    EXPECT_EQ(mask, obs::kCatSched | obs::kCatRtcall);

    EXPECT_FALSE(obs::parseTraceCats("signal,bogus", &mask, &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(TraceCats, DefaultMaskExcludesHostSensitiveCategories)
{
    // The whole determinism story rests on this: engine events differ
    // across --engine and snapshot markers differ across save legs.
    EXPECT_EQ(obs::kDefaultCats & obs::kCatEngine, 0u);
    EXPECT_EQ(obs::kDefaultCats & obs::kCatSnapshot, 0u);
    // Every kind maps into exactly one known category bit.
    for (std::uint16_t k = 0;
         k < static_cast<std::uint16_t>(obs::TraceKind::NumKinds); ++k) {
        auto kind = static_cast<obs::TraceKind>(k);
        std::uint32_t cat = obs::traceKindCat(kind);
        EXPECT_NE(cat & obs::kAllCats, 0u) << obs::traceKindName(kind);
        EXPECT_EQ(cat & (cat - 1), 0u) << obs::traceKindName(kind);
    }
}

TEST(TraceSpec, SectionParsesAndRejectsUnknowns)
{
    const char *text = R"(
[scenario]
name = spec_test

[machine misp]
ams = 2

[workload]
name = dense_mvm

[trace]
categories = sched mem
max_events = 128
)";
    driver::SpecFile spec;
    driver::Scenario sc;
    std::string err;
    ASSERT_TRUE(driver::SpecFile::parse(text, "<test>", &spec, &err))
        << err;
    ASSERT_TRUE(driver::Scenario::fromSpec(spec, &sc, &err)) << err;
    EXPECT_EQ(sc.trace.catMask, obs::kCatSched | obs::kCatMem);
    EXPECT_EQ(sc.trace.maxEvents, 128u);
    EXPECT_FALSE(sc.trace.enabled); // only --trace switches it on

    std::string bad = text;
    bad.replace(bad.find("sched mem"), 9, "sched bog");
    driver::SpecFile badSpec;
    ASSERT_TRUE(
        driver::SpecFile::parse(bad, "<test>", &badSpec, &err))
        << err;
    driver::Scenario badSc;
    EXPECT_FALSE(driver::Scenario::fromSpec(badSpec, &badSc, &err));
    EXPECT_NE(err.find("bog"), std::string::npos);
}

// ---------------------------------------------------------------------
// The determinism contract, end to end
// ---------------------------------------------------------------------

TEST(TraceDeterminism, ByteIdenticalAcrossEngines)
{
    std::string ref;
    for (cpu::Engine e : {cpu::Engine::Reference, cpu::Engine::Cache,
                          cpu::Engine::Superblock}) {
        harness::RunRequest req = tracedRequest();
        req.config.misp.engine = e;
        harness::RunRecord rec = harness::runOne(req);
        ASSERT_TRUE(rec.ok());
        EXPECT_GT(rec.trace.events.size(), 0u);
        EXPECT_EQ(rec.trace.dropped, 0u);
        // Record order follows the event queue: seq never decreases.
        for (std::size_t i = 1; i < rec.trace.events.size(); ++i)
            EXPECT_GE(rec.trace.events[i].seq,
                      rec.trace.events[i - 1].seq);
        std::string json = render("engines", rec.trace);
        if (ref.empty())
            ref = json;
        else
            EXPECT_EQ(json, ref) << cpu::engineName(e);
    }
}

TEST(TraceDeterminism, ByteIdenticalAcrossJobsAndIsolate)
{
    driver::RunnerOptions serial;
    serial.hostLines = false;
    serial.traceEnabled = true;

    driver::RunnerOptions pool = serial;
    pool.jobs = 2;

    driver::RunnerOptions isolate = pool;
    isolate.isolate = true;

    std::vector<driver::PointResult> a = runScenario(serial);
    std::vector<driver::PointResult> b = runScenario(pool);
    std::vector<driver::PointResult> c = runScenario(isolate);
    ASSERT_EQ(a.size(), 3u);
    ASSERT_EQ(b.size(), a.size());
    ASSERT_EQ(c.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].run.ok());
        EXPECT_GT(a[i].run.trace.events.size(), 0u);
        std::string expect = render("pt", a[i].run.trace);
        EXPECT_EQ(render("pt", b[i].run.trace), expect) << i;
        EXPECT_EQ(render("pt", c[i].run.trace), expect) << i;
    }
}

TEST(TraceDeterminism, SaveLegMatchesColdAndRestoreMatchesSkip)
{
    const std::string image = tempPath("trace_legs.misnap");

    harness::RunRequest cold = tracedRequest();
    harness::RunRecord coldRec = harness::runOne(cold);
    ASSERT_TRUE(coldRec.ok());
    ASSERT_GT(coldRec.trace.events.size(), 0u);

    // Save leg: warms up, archives, runs on. Under the default mask
    // the snapshot.save marker is filtered, so the trace must be
    // byte-identical to the uninterrupted run's.
    harness::RunRequest save = cold;
    save.snapshotOut = image;
    save.warmupTicks = coldRec.ticks / 3;
    harness::RunRecord saveRec = harness::runOne(save);
    ASSERT_TRUE(saveRec.ok());
    EXPECT_EQ(render("cold", saveRec.trace),
              render("cold", coldRec.trace));

    // Restore leg: the recorder's base lands on the restore point's
    // processed-event cursor — a strict filter of the cold trace.
    harness::RunRequest warm = cold;
    warm.snapshotIn = image;
    harness::RunRecord warmRec = harness::runOne(warm);
    ASSERT_TRUE(warmRec.ok());
    const std::uint64_t base = warmRec.trace.base;
    EXPECT_GT(base, 0u);
    std::vector<obs::TraceEvent> tail;
    for (const obs::TraceEvent &ev : coldRec.trace.events)
        if (ev.seq > base)
            tail.push_back(ev);
    ASSERT_EQ(warmRec.trace.events.size(), tail.size());
    for (std::size_t i = 0; i < tail.size(); ++i) {
        EXPECT_EQ(warmRec.trace.events[i].seq, tail[i].seq);
        EXPECT_EQ(warmRec.trace.events[i].tick, tail[i].tick);
        EXPECT_EQ(warmRec.trace.events[i].kind, tail[i].kind);
    }

    // And the documented reproduction recipe: a cold run with
    // --trace-skip at the restored base emits the identical trace.
    harness::RunRequest skip = cold;
    skip.traceSkip = base;
    harness::RunRecord skipRec = harness::runOne(skip);
    ASSERT_TRUE(skipRec.ok());
    EXPECT_EQ(render("leg", skipRec.trace), render("leg", warmRec.trace));

    std::remove(image.c_str());
}

TEST(TraceDeterminism, TracingDoesNotPerturbResultsOrImages)
{
    const std::string traced = tempPath("trace_on.misnap");
    const std::string plain = tempPath("trace_off.misnap");

    harness::RunRequest on = tracedRequest();
    on.snapshotOut = traced;
    on.warmupTicks = 10'000'000;
    harness::RunRecord onRec = harness::runOne(on);

    harness::RunRequest off = on;
    off.trace.enabled = false;
    off.snapshotOut = plain;
    harness::RunRecord offRec = harness::runOne(off);

    ASSERT_TRUE(onRec.ok());
    ASSERT_TRUE(offRec.ok());
    EXPECT_EQ(onRec.ticks, offRec.ticks);
    EXPECT_EQ(onRec.instsRetired, offRec.instsRetired);
    EXPECT_TRUE(offRec.trace.events.empty());

    // Tracing is excluded from configHash and touches no machine
    // state: the archived images must be byte-identical.
    std::string a = slurp(traced);
    std::string b = slurp(plain);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);

    std::remove(traced.c_str());
    std::remove(plain.c_str());
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

TEST(TraceCodec, RoundTripCarriesTraceAndPhases)
{
    harness::RunRecord rec;
    rec.status = harness::RunStatus::Completed;
    rec.ticks = 123456;
    rec.instsRetired = 42;
    rec.attempts = 3;
    rec.phases.parse = 0.25;
    rec.phases.warmup = 0.5;
    rec.phases.run = 1.5;
    rec.phases.serialize = 0.125;
    rec.trace.base = 7;
    rec.trace.dropped = 2;
    rec.trace.catMask = obs::kDefaultCats;
    rec.trace.maxEvents = 16;
    for (int i = 0; i < 3; ++i) {
        obs::TraceEvent ev;
        ev.tick = 100 + i;
        ev.seq = 8 + i;
        ev.kind = static_cast<std::uint16_t>(obs::TraceKind::ShredStart);
        ev.sid = static_cast<std::uint16_t>(i);
        ev.aux = 5;
        ev.arg0 = 0xAB00 + i;
        ev.arg1 = i;
        rec.trace.events.push_back(ev);
    }

    std::string wire = snap::encodeRunRecord(rec);
    harness::RunRecord out;
    std::string err;
    ASSERT_TRUE(snap::decodeRunRecord(wire, &out, &err)) << err;
    EXPECT_EQ(out.attempts, 3u);
    EXPECT_EQ(out.phases.run, 1.5);
    EXPECT_EQ(out.phases.serialize, 0.125);
    EXPECT_EQ(out.trace.base, 7u);
    EXPECT_EQ(out.trace.dropped, 2u);
    EXPECT_EQ(out.trace.catMask, obs::kDefaultCats);
    EXPECT_EQ(out.trace.maxEvents, 16u);
    EXPECT_EQ(render("codec", out.trace), render("codec", rec.trace));
}

TEST(TraceCodec, FailsClosedOnGarbage)
{
    harness::RunRecord rec;
    rec.trace.events.resize(2);
    std::string wire = snap::encodeRunRecord(rec);

    harness::RunRecord out;
    std::string err;
    // Truncation anywhere in the trace payload is an error, not a
    // short read.
    EXPECT_FALSE(snap::decodeRunRecord(
        wire.substr(0, wire.size() - 10), &out, &err));

    // An out-of-range kind is rejected (the enum is append-only, so a
    // kind from the future means a codec mismatch).
    harness::RunRecord badKind;
    badKind.trace.events.resize(1);
    badKind.trace.events[0].kind = 999;
    EXPECT_FALSE(snap::decodeRunRecord(snap::encodeRunRecord(badKind),
                                       &out, &err));
    EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------
// Plane 2: the supervisor run log under chaos
// ---------------------------------------------------------------------

TEST(RunLog, DispatchCountMatchesAttemptsUnderChaos)
{
    std::ostringstream logStream;
    obs::RunLog runLog(&logStream);

    driver::RunnerOptions opts;
    opts.hostLines = false;
    opts.traceEnabled = true;
    opts.isolate = true;
    opts.jobs = 2;
    opts.retries = 3;
    opts.backoffMs = 1;
    opts.runLog = &runLog;
    std::string err;
    ASSERT_TRUE(driver::FaultPlan::parse("seed=9;crash@p0.5",
                                         &opts.faults, &err))
        << err;

    std::vector<driver::ScenarioPoint> pts;
    std::vector<driver::PointResult> results = runScenario(opts, &pts);
    ASSERT_EQ(results.size(), 3u);

    const std::string log = logStream.str();
    unsigned totalAttempts = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        totalAttempts += results[i].run.attempts;
        // Per point: one dispatched line per attempt (even attempts
        // the fault plan kills before fork), exactly one terminal
        // completed line, and attempts-1 retried lines.
        std::string label = pts[i].machine.name + ":" +
                            pts[i].workload.name + " " +
                            pts[i].coordString();
        std::string key = "\"point\":\"" + label + "\"";
        int dispatched = 0, completed = 0, retried = 0;
        std::istringstream lines(log);
        std::string line;
        while (std::getline(lines, line)) {
            if (line.find(key) == std::string::npos)
                continue;
            dispatched += line.find("\"event\":\"dispatched\"") !=
                          std::string::npos;
            completed += line.find("\"event\":\"completed\"") !=
                         std::string::npos;
            retried += line.find("\"event\":\"retried\"") !=
                       std::string::npos;
        }
        EXPECT_EQ(dispatched,
                  static_cast<int>(results[i].run.attempts))
            << label;
        EXPECT_EQ(completed, 1) << label;
        EXPECT_EQ(retried,
                  static_cast<int>(results[i].run.attempts) - 1)
            << label;
    }
    EXPECT_EQ(countOf(log, "\"event\":\"dispatched\""),
              static_cast<int>(totalAttempts));
    // Every line is self-describing JSONL with a monotonic timestamp.
    EXPECT_EQ(countOf(log, "\"ts_ms\":"), countOf(log, "\n"));

    // Chaos must not perturb the simulated plane: the surviving
    // points' traces are byte-identical to a clean serial run's.
    driver::RunnerOptions clean;
    clean.hostLines = false;
    clean.traceEnabled = true;
    std::vector<driver::PointResult> ref = runScenario(clean);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].run.ok())
            continue;
        EXPECT_EQ(render("pt", results[i].run.trace),
                  render("pt", ref[i].run.trace))
            << i;
    }
}

// ---------------------------------------------------------------------
// CLI surface audit
// ---------------------------------------------------------------------

TEST(CliHelp, UsageNamesEveryRegisteredFlag)
{
    const std::string usage = driver::mispsimUsage("mispsim");
    const std::vector<std::string> names = driver::mispsimFlagNames();
    ASSERT_FALSE(names.empty());
    for (const std::string &name : names)
        EXPECT_NE(usage.find(name), std::string::npos) << name;

    // The observability flags this PR adds must be part of the
    // audited surface.
    for (const char *flag : {"--trace", "--trace-skip", "--run-log",
                             "--progress", "--profile"})
        EXPECT_NE(std::find(names.begin(), names.end(), flag),
                  names.end())
            << flag;
}

TEST(CliHelp, ExitCodeTableIsCompleteAndRendered)
{
    const std::vector<driver::CliExitCode> &codes =
        driver::mispsimExitCodes();
    std::vector<int> values;
    for (const driver::CliExitCode &c : codes)
        values.push_back(c.code);
    // The full exit surface of mispsim, in one auditable place:
    // 0 success, 1 run/validation failure, 2 usage error, 4 partial
    // sweep (some points failed infra-side).
    EXPECT_EQ(values, (std::vector<int>{0, 1, 2, 4}));
    EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));

    const std::string usage = driver::mispsimUsage("mispsim");
    EXPECT_NE(usage.find("exit codes"), std::string::npos);
    for (const driver::CliExitCode &c : codes) {
        // The renderer indents continuation lines, so match on the
        // "  <code>  <first help line>" prefix.
        std::string help(c.help);
        std::string entry = "  " + std::to_string(c.code) + "  " +
                            help.substr(0, help.find('\n'));
        EXPECT_NE(usage.find(entry), std::string::npos) << entry;
    }
}
