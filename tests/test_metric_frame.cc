/**
 * @file
 * MetricFrame tests: columnar construction and deterministic
 * iteration/serialization, the group/cross-axis/aggregate queries the
 * assert grammar compiles to, malformed-selector diagnostics (with
 * spec line numbers), assert-failure reference echoes, and
 * byte-equivalence of the frame-based emitters with the legacy
 * per-PointResult format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/report.hh"
#include "driver/runner.hh"
#include "harness/metric_frame.hh"
#include "sim/logging.hh"

using namespace misp;
using namespace misp::driver;
using harness::MetricFrame;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuietLogging(true); }
};

const ::testing::Environment *const kQuietEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

Scenario
mustScenario(const std::string &text)
{
    SpecFile spec;
    Scenario sc;
    std::string err;
    EXPECT_TRUE(SpecFile::parse(text, "<test>", &spec, &err)) << err;
    EXPECT_TRUE(Scenario::fromSpec(spec, &sc, &err)) << err;
    return sc;
}

/** A synthetic completed point with distinctive event counts. */
PointResult
fakePoint(const std::string &machine, const std::string &workload,
          Tick ticks, std::uint64_t insts,
          std::vector<std::pair<std::string, std::string>> coords = {})
{
    PointResult r;
    r.machine = machine;
    r.workload = workload;
    r.coords = std::move(coords);
    r.run.status = harness::RunStatus::Completed;
    r.run.ticks = ticks;
    r.run.valid = true;
    r.run.instsRetired = insts;
    r.run.events.omsPageFaults = 10;
    r.run.events.amsPageFaults = 40;
    r.run.events.serializeCycles = 12345.0;
    return r;
}

/** The two-machine x two-value grid most tests query: a is the
 *  baseline, b is 2x / 4x faster depending on the axis value. */
std::vector<PointResult>
twoAxisGrid()
{
    std::vector<PointResult> results;
    results.push_back(
        fakePoint("a", "dense_mvm", 400, 1'000'000, {{"workload.param.dim", "64"}}));
    results.push_back(
        fakePoint("b", "dense_mvm", 200, 1'000'000, {{"workload.param.dim", "64"}}));
    results.push_back(
        fakePoint("a", "dense_mvm", 800, 1'000'000, {{"workload.param.dim", "96"}}));
    results.push_back(
        fakePoint("b", "dense_mvm", 200, 1'000'000, {{"workload.param.dim", "96"}}));
    return results;
}

Scenario
twoAxisScenario()
{
    return mustScenario(
        "[machine a]\nams = 1\n[machine b]\nams = 3\n"
        "[workload]\nname = dense_mvm\n"
        "[sweep]\nworkload.param.dim = 64, 96\n"
        "[report]\nbaseline_machine = a\n");
}

/** Run the evaluator over a frame built the way mispsim builds it. */
bool
evalAsserts(const Scenario &sc, const std::vector<PointResult> &results,
            std::vector<AssertFailure> *failures, std::string *err,
            std::size_t *skipped = nullptr)
{
    failures->clear();
    return evaluateAsserts(sc, buildMetricFrame(sc, results), failures,
                           err, skipped);
}

/** A point whose worker failed for infrastructure reasons. */
PointResult
failedPoint(const std::string &machine, const std::string &workload,
            harness::RunStatus status, unsigned attempts,
            std::vector<std::pair<std::string, std::string>> coords = {})
{
    PointResult r;
    r.machine = machine;
    r.workload = workload;
    r.coords = std::move(coords);
    r.run.status = status;
    r.run.valid = false;
    r.run.attempts = attempts;
    r.run.note = "injected";
    return r;
}

/** twoAxisGrid() with b's dim=96 point lost to a worker crash. */
std::vector<PointResult>
degradedGrid()
{
    std::vector<PointResult> results = twoAxisGrid();
    results[3] = failedPoint("b", "dense_mvm",
                             harness::RunStatus::WorkerCrashed, 3,
                             {{"workload.param.dim", "96"}});
    return results;
}

} // namespace

// ---------------------------------------------------------------------
// Construction + determinism
// ---------------------------------------------------------------------

TEST(MetricFrame, ColumnarConstructionAndGroups)
{
    Scenario sc = twoAxisScenario();
    MetricFrame frame = buildMetricFrame(sc, twoAxisGrid());

    ASSERT_EQ(frame.numRows(), 4u);
    ASSERT_EQ(frame.numGroups(), 2u);
    EXPECT_EQ(frame.groupRows(0), (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(frame.groupRows(1), (std::vector<std::size_t>{2, 3}));
    EXPECT_EQ(frame.groupLabel(0), "workload.param.dim=64");
    EXPECT_EQ(frame.row(3).group, 1u);

    // The fixed column set: scalars, events, events_per_mi, and the
    // derived speedup (baseline_machine is set).
    EXPECT_TRUE(frame.hasMetric("ticks"));
    EXPECT_TRUE(frame.hasMetric("mcycles"));
    EXPECT_TRUE(frame.hasMetric("events.oms_page_faults"));
    EXPECT_TRUE(frame.hasMetric("events_per_mi.ams_page_faults"));
    EXPECT_TRUE(frame.hasMetric("speedup"));
    EXPECT_FALSE(frame.hasMetric("nosuch"));

    EXPECT_DOUBLE_EQ(frame.at(0, "ticks"), 400.0);
    EXPECT_DOUBLE_EQ(frame.at(0, "mcycles"), 4e-4);
    EXPECT_DOUBLE_EQ(frame.at(0, "valid"), 1.0);
    EXPECT_DOUBLE_EQ(frame.at(0, "completed"), 1.0);
    EXPECT_DOUBLE_EQ(frame.at(0, "events.oms_page_faults"), 10.0);
    EXPECT_DOUBLE_EQ(frame.at(0, "events.serialize_cycles"), 12345.0);
    // 40 faults / 1 MInst.
    EXPECT_DOUBLE_EQ(frame.at(0, "events_per_mi.ams_page_faults"), 40.0);
    // Speedup within each group: b vs baseline a.
    EXPECT_DOUBLE_EQ(frame.at(1, "speedup"), 2.0);
    EXPECT_DOUBLE_EQ(frame.at(3, "speedup"), 4.0);
    EXPECT_DOUBLE_EQ(frame.at(0, "speedup"), 1.0);

    // Unknown metrics fail loudly for renderers.
    EXPECT_THROW(frame.at(0, "nosuch"), SimError);

    // value() is the non-fatal form.
    double v = 0;
    EXPECT_FALSE(frame.value(0, "nosuch", &v));
    EXPECT_TRUE(frame.value(2, "ticks", &v));
    EXPECT_DOUBLE_EQ(v, 800.0);
}

TEST(MetricFrame, NoBaselineMeansNoSpeedupColumn)
{
    Scenario sc = mustScenario(
        "[machine a]\nams = 1\n[workload]\nname = dense_mvm\n");
    std::vector<PointResult> results;
    results.push_back(fakePoint("a", "dense_mvm", 100, 1'000'000));
    MetricFrame frame = buildMetricFrame(sc, results);
    EXPECT_FALSE(frame.hasMetric("speedup"));
}

TEST(MetricFrame, SpeedupIsZeroUnlessBothRunsCompleted)
{
    Scenario sc = twoAxisScenario();
    std::vector<PointResult> results = twoAxisGrid();
    results[0].run.status = harness::RunStatus::MaxTicksReached;
    MetricFrame frame = buildMetricFrame(sc, results);
    // Baseline of group 0 never completed: speedupOver semantics.
    EXPECT_DOUBLE_EQ(frame.at(1, "speedup"), 0.0);
    EXPECT_DOUBLE_EQ(frame.at(3, "speedup"), 4.0);
}

TEST(MetricFrame, DeterministicJsonSerialization)
{
    Scenario sc = twoAxisScenario();
    auto render = [&] {
        std::ostringstream os;
        buildMetricFrame(sc, twoAxisGrid()).writeJson(os);
        return os.str();
    };
    const std::string one = render();
    EXPECT_EQ(one, render());
    EXPECT_NE(one.find("\"metrics\": [\"ticks\", \"mcycles\""),
              std::string::npos);
    EXPECT_NE(one.find("\"status\": \"completed\""), std::string::npos);
    // Integral values print as integers, not 400.000000.
    EXPECT_NE(one.find("\"ticks\": 400"), std::string::npos);
    EXPECT_EQ(std::count(one.begin(), one.end(), '{'),
              std::count(one.begin(), one.end(), '}'));

    // The --metrics wrapper adds the scenario header around the frame.
    std::ostringstream full;
    writeMetricsJson(full, sc, /*quickMode=*/true,
                     buildMetricFrame(sc, twoAxisGrid()));
    EXPECT_NE(full.str().find("\"quick\": true"), std::string::npos);
    EXPECT_NE(full.str().find("\"frame\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// Query surface
// ---------------------------------------------------------------------

TEST(MetricFrame, LookupQueries)
{
    Scenario sc = twoAxisScenario();
    MetricFrame frame = buildMetricFrame(sc, twoAxisGrid());

    EXPECT_EQ(frame.rowInGroup(1, "b"), 3u);
    EXPECT_EQ(frame.rowInGroup(1, "nosuch"), MetricFrame::npos);

    EXPECT_EQ(frame.findRow("b", "dense_mvm", 0), 1u);
    EXPECT_EQ(frame.findRow("b", {{"workload.param.dim", "96"}}), 3u);
    EXPECT_EQ(frame.findRow("b", {{"workload.param.dim", "128"}}), MetricFrame::npos);

    EXPECT_EQ(frame.workloads(),
              (std::vector<std::string>{"dense_mvm"}));

    // Cross-axis: from group 0, the b row with workload.param.dim forced to 96.
    EXPECT_EQ(frame.rowWithOverrides(0, "b", {{"workload.param.dim", "96"}}), 3u);
    EXPECT_EQ(frame.rowWithOverrides(1, "b", {{"workload.param.dim", "64"}}), 1u);
    EXPECT_EQ(frame.rowWithOverrides(0, "b", {{"workload.param.dim", "77"}}),
              MetricFrame::npos);

    // Axis baseline: first grid value of the axis, same machine.
    EXPECT_EQ(frame.axisBaselineRow(3, "workload.param.dim"), 1u);
    EXPECT_EQ(frame.axisBaselineRow(1, "workload.param.dim"), 1u);
}

// ---------------------------------------------------------------------
// Aggregate grammar
// ---------------------------------------------------------------------

TEST(AssertGrammar, AggregatesFoldAcrossCoordinateGroups)
{
    Scenario sc = twoAxisScenario();
    std::vector<PointResult> results = twoAxisGrid();
    std::vector<AssertFailure> failures;
    std::string err;

    // a.ticks over the two groups: {400, 800}; b.speedup: {2, 4}.
    sc.report.asserts = {
        {"avg ( a.ticks ) == 600", 1},
        {"min ( a.ticks ) == 400", 2},
        {"max ( a.ticks ) == 800", 3},
        {"sum ( a.ticks ) == 1200", 4},
        {"count ( a.ticks ) == 2", 5},
        // geomean(2,4) = sqrt(8) ~ 2.828; parens may hug the body.
        // (== on the squared value would hit floating-point noise.)
        {"geomean(b.speedup) * geomean(b.speedup) >= 7.999", 6},
        {"geomean(b.speedup) * geomean(b.speedup) <= 8.001", 6},
        // Aggregate bodies are full expressions, evaluated per group.
        {"avg ( a.ticks / b.ticks ) == 3", 7},
        // Aggregates compose with arithmetic and nest.
        {"avg ( a.ticks ) + max ( a.ticks ) == 1400", 8},
        {"max ( a.ticks - avg ( a.ticks ) ) == 200", 9},
    };
    ASSERT_TRUE(evalAsserts(sc, results, &failures, &err)) << err;
    EXPECT_TRUE(failures.empty()) << failures.front().detail;
}

TEST(AssertGrammar, AggregateOnlyAssertsEvaluateOncePerSweep)
{
    Scenario sc = twoAxisScenario();
    std::vector<AssertFailure> failures;
    std::string err;

    // A failing suite claim reports once (not once per group), names
    // the sweep, and echoes the per-group body values so the offending
    // points are identifiable.
    sc.report.asserts = {{"avg ( b.speedup ) >= 100", 42}};
    ASSERT_TRUE(evalAsserts(sc, twoAxisGrid(), &failures, &err)) << err;
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0].line, 42);
    EXPECT_NE(failures[0].detail.find("lhs=3"), std::string::npos);
    EXPECT_NE(failures[0].detail.find("the whole sweep"),
              std::string::npos);
    EXPECT_NE(failures[0].detail.find("b.speedup[workload.param.dim=64]=2"),
              std::string::npos);
    EXPECT_NE(failures[0].detail.find("b.speedup[workload.param.dim=96]=4"),
              std::string::npos);

    // A per-group assert mixing in an aggregate still evaluates per
    // group — the aggregate is a sweep-wide constant. b.speedup is
    // {2, 4}, avg is 3: only the workload.param.dim=64 group fails.
    sc.report.asserts = {{"b.speedup >= avg ( b.speedup )", 7}};
    ASSERT_TRUE(evalAsserts(sc, twoAxisGrid(), &failures, &err)) << err;
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].detail.find("at workload.param.dim=64"), std::string::npos);
    // The bare ref's value is echoed too.
    EXPECT_NE(failures[0].detail.find("b.speedup=2"), std::string::npos);
}

TEST(AssertGrammar, AggregateDiagnostics)
{
    Scenario sc = twoAxisScenario();
    std::vector<AssertFailure> failures;
    std::string err;

    // geomean over a non-positive value fails closed.
    std::vector<PointResult> results = twoAxisGrid();
    results[0].run.status = harness::RunStatus::MaxTicksReached;
    sc.report.asserts = {{"geomean ( b.speedup ) >= 1", 3}};
    EXPECT_FALSE(evalAsserts(sc, results, &failures, &err));
    EXPECT_NE(err.find("geomean"), std::string::npos);
    EXPECT_NE(err.find(":3:"), std::string::npos);

    // Unbalanced aggregate parens are hard errors with the line.
    sc.report.asserts = {{"avg ( b.ticks >= 1", 9}};
    EXPECT_FALSE(evalAsserts(sc, twoAxisGrid(), &failures, &err));
    EXPECT_NE(err.find(":9:"), std::string::npos);
    EXPECT_NE(err.find("expected ')'"), std::string::npos);

    // An aggregate name without '(' still resolves as a plain ref
    // (machines may be called avg); here there is no such machine.
    sc.report.asserts = {{"avg.ticks >= 1", 4}};
    EXPECT_FALSE(evalAsserts(sc, twoAxisGrid(), &failures, &err));
    EXPECT_NE(err.find("names no [machine] section"), std::string::npos);
}

// ---------------------------------------------------------------------
// Cross-axis selectors
// ---------------------------------------------------------------------

TEST(AssertGrammar, CrossAxisSelectors)
{
    Scenario sc = twoAxisScenario();
    std::vector<AssertFailure> failures;
    std::string err;

    sc.report.asserts = {
        // From every group, address the a rows of both axis values.
        {"a[workload.param.dim=96].ticks == 2 * a[workload.param.dim=64].ticks", 1},
        // Selector + aggregate: the body is constant across groups.
        {"avg ( a[workload.param.dim=96].ticks - a[workload.param.dim=64].ticks ) == 400", 2},
        // Metric grammar still applies behind a selector.
        {"b[workload.param.dim=96].speedup == 4", 3},
    };
    ASSERT_TRUE(evalAsserts(sc, twoAxisGrid(), &failures, &err)) << err;
    EXPECT_TRUE(failures.empty()) << failures.front().detail;
}

TEST(AssertGrammar, PinnedSelectorsEvaluateOncePerProjection)
{
    // Two axes; the assert pins workload.param.dim, so it depends on
    // the group only through machine (none here — single machine
    // section, values distinguished by coords). Build a 2x2 grid over
    // (w, workload.param.dim): the assert must be evaluated (and may
    // fail) once per distinct w, never once per (w, dim) pair, and
    // the failure label must name only the consulted axis.
    Scenario sc = mustScenario(
        "[machine a]\nams = 1\n[workload]\nname = dense_mvm\n"
        "[sweep]\nworkload.workers = 1, 2\n"
        "workload.param.dim = 64, 96\n");
    std::vector<PointResult> results;
    for (const char *w : {"1", "2"}) {
        for (const char *d : {"64", "96"}) {
            Tick ticks = (w[0] == '1' ? 100 : 200) +
                         (d[0] == '9' ? 1000 : 0);
            results.push_back(
                fakePoint("a", "dense_mvm", ticks, 1'000'000,
                          {{"workload.workers", w},
                           {"workload.param.dim", d}}));
        }
    }

    std::vector<AssertFailure> failures;
    std::string err;
    sc.report.asserts = {
        {"a[workload.param.dim=96].ticks < "
         "a[workload.param.dim=64].ticks",
         5}};
    ASSERT_TRUE(evalAsserts(sc, results, &failures, &err)) << err;
    // 4 coordinate groups, 2 distinct projections onto the consulted
    // axis -> exactly 2 failures, labeled by workload.workers alone.
    ASSERT_EQ(failures.size(), 2u);
    EXPECT_NE(failures[0].detail.find("at workload.workers=1"),
              std::string::npos)
        << failures[0].detail;
    EXPECT_EQ(failures[0].detail.find("workload.param.dim=64 "),
              std::string::npos);
    EXPECT_NE(failures[1].detail.find("at workload.workers=2"),
              std::string::npos);

    // Pinning every axis makes the assert a whole-sweep claim:
    // evaluated once, one failure.
    sc.report.asserts = {
        {"a[workload.param.dim=96,workload.workers=1].ticks == 0", 6}};
    ASSERT_TRUE(evalAsserts(sc, results, &failures, &err)) << err;
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].detail.find("the whole sweep"),
              std::string::npos);
}

TEST(AssertGrammar, MalformedSelectorDiagnosticsCarryLineNumbers)
{
    Scenario sc = twoAxisScenario();
    std::vector<AssertFailure> failures;
    std::string err;

    const struct {
        const char *expr;
        const char *want;
    } cases[] = {
        {"b[workload.param.dim].ticks >= 0", "is not axis=value"},
        {"b[=64].ticks >= 0", "is not axis=value"},
        {"b[nosuch=64].ticks >= 0", "names no sweep coordinate"},
        {"b[workload.param.dim=77].ticks >= 0",
         "matches no value of axis 'workload.param.dim' (values: 64, 96)"},
        {"b[workload.param.dim=64] >= 0", "expected '.<metric>' after ']'"},
        {"b[workload.param.dim=64.ticks >= 0", "missing ']'"},
        {"nosuch[workload.param.dim=64].ticks >= 0", "names no [machine] section"},
        {"b[workload.param.dim=64].nosuch >= 0", "unknown metric"},
        {"b[workload.param.dim=64].events.nosuch >= 0", "unknown event counter"},
    };
    for (const auto &c : cases) {
        sc.report.asserts = {{c.expr, 17}};
        EXPECT_FALSE(evalAsserts(sc, twoAxisGrid(), &failures, &err))
            << c.expr;
        EXPECT_NE(err.find(":17:"), std::string::npos) << err;
        EXPECT_NE(err.find(c.want), std::string::npos)
            << c.expr << " -> " << err;
    }
}

// ---------------------------------------------------------------------
// Graceful degradation: failed/attempts columns, aggregate skips, and
// the on_failed_points policy
// ---------------------------------------------------------------------

TEST(Degradation, FailedAndAttemptsColumnsTrackInfraFailures)
{
    Scenario sc = twoAxisScenario();
    MetricFrame frame = buildMetricFrame(sc, degradedGrid());

    EXPECT_EQ(frame.at(0, "failed"), 0.0);
    EXPECT_EQ(frame.at(0, "attempts"), 1.0);
    EXPECT_EQ(frame.at(3, "failed"), 1.0);
    EXPECT_EQ(frame.at(3, "attempts"), 3.0);

    ASSERT_EQ(frame.numGroups(), 2u);
    EXPECT_FALSE(frame.groupHasFailure(0));
    EXPECT_TRUE(frame.groupHasFailure(1));
}

TEST(Degradation, AggregatesSkipDegradedGroups)
{
    Scenario sc = twoAxisScenario();
    std::vector<AssertFailure> failures;
    std::string err;

    // Both sides exclude the degraded dim=96 group, so the suite
    // completeness claim still holds over the survivors.
    sc.report.asserts = {{"count ( b.completed ) == count ( 1 )", 3}};
    ASSERT_TRUE(evalAsserts(sc, degradedGrid(), &failures, &err)) << err;
    EXPECT_TRUE(failures.empty());

    // Folds see only the surviving group's values: avg(a.ticks) is
    // 400 (dim=64), not (400+800)/2 — a's dim=96 row completed but its
    // group is degraded.
    sc.report.asserts = {{"avg ( a.ticks ) == 400", 4}};
    ASSERT_TRUE(evalAsserts(sc, degradedGrid(), &failures, &err)) << err;
    EXPECT_TRUE(failures.empty());

    // A failing aggregate claim echoes the skipped-group count.
    sc.report.asserts = {{"avg ( a.ticks ) == 800", 5}};
    ASSERT_TRUE(evalAsserts(sc, degradedGrid(), &failures, &err)) << err;
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].detail.find("degraded groups skipped"),
              std::string::npos)
        << failures[0].detail;
}

TEST(Degradation, PolicyControlsEvaluationsOverFailedPoints)
{
    Scenario sc = twoAxisScenario();
    std::vector<AssertFailure> failures;
    std::string err;
    std::size_t skipped = 0;

    // Default (fail) and skip policies skip the evaluation at the
    // degraded group and count it; the claim would otherwise fail
    // there (a crashed point reads as ticks == 0).
    sc.report.asserts = {{"b.ticks > 0", 3}};
    ASSERT_TRUE(
        evalAsserts(sc, degradedGrid(), &failures, &err, &skipped))
        << err;
    EXPECT_TRUE(failures.empty());
    EXPECT_EQ(skipped, 1u);

    sc.report.onFailedPoints = FailedPointPolicy::Skip;
    ASSERT_TRUE(
        evalAsserts(sc, degradedGrid(), &failures, &err, &skipped))
        << err;
    EXPECT_TRUE(failures.empty());
    EXPECT_EQ(skipped, 1u);

    // require_all turns the degraded evaluation into an assert failure
    // naming the policy.
    sc.report.onFailedPoints = FailedPointPolicy::RequireAll;
    ASSERT_TRUE(
        evalAsserts(sc, degradedGrid(), &failures, &err, &skipped))
        << err;
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].detail.find("on_failed_points=require_all"),
              std::string::npos)
        << failures[0].detail;

    // A clean sweep skips nothing under any policy.
    sc.report.onFailedPoints = FailedPointPolicy::Fail;
    ASSERT_TRUE(
        evalAsserts(sc, twoAxisGrid(), &failures, &err, &skipped))
        << err;
    EXPECT_TRUE(failures.empty());
    EXPECT_EQ(skipped, 0u);
}

TEST(AssertGrammar, SelectorValuesNormalizeNumerically)
{
    Scenario sc = twoAxisScenario();
    std::vector<AssertFailure> failures;
    std::string err;

    // 9.6e1 addresses the axis value spelled `96`; 6.4e1 the value
    // spelled `64`. Exact spellings keep working.
    sc.report.asserts = {
        {"b[workload.param.dim=9.6e1].ticks == 200", 3},
        {"a[workload.param.dim=6.4e1].ticks == 400", 4},
        {"a[workload.param.dim=96].ticks == 800", 5},
    };
    ASSERT_TRUE(evalAsserts(sc, twoAxisGrid(), &failures, &err)) << err;
    EXPECT_TRUE(failures.empty()) << failures[0].detail;
}

// ---------------------------------------------------------------------
// Emitter byte-equivalence with the legacy per-PointResult format
// ---------------------------------------------------------------------

TEST(FrameEmitters, JsonMatchesLegacyFormatByteForByte)
{
    Scenario sc = twoAxisScenario();
    std::vector<PointResult> results = twoAxisGrid();
    MetricFrame frame = buildMetricFrame(sc, results);

    std::ostringstream os;
    writeJson(os, sc, /*quickMode=*/false, frame);

    // The legacy emitter walked the PointResults directly; the frame
    // renderer must reproduce it byte for byte (CI diffs depend on
    // it). Reconstruct the old format from the raw records here.
    std::ostringstream want;
    want << "{\n  \"scenario\": \"scenario\",\n  \"title\": \"\",\n"
         << "  \"quick\": false,\n  \"points\": [";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const PointResult &r = results[i];
        want << (i ? ",\n" : "\n") << "    {\n"
             << "      \"machine\": \"" << r.machine << "\",\n"
             << "      \"workload\": \"" << r.workload << "\",\n"
             << "      \"competitors\": " << r.competitors << ",\n"
             << "      \"coords\": {\"workload.param.dim\": \"" << r.coords[0].second
             << "\"},\n"
             << "      \"status\": \"completed\",\n"
             << "      \"ticks\": " << r.run.ticks << ",\n"
             << "      \"valid\": true,\n"
             << "      \"insts_retired\": " << r.run.instsRetired
             << ",\n      \"events\": {\n";
        const std::vector<harness::EventField> &fields =
            harness::eventFields();
        for (std::size_t f = 0; f < fields.size(); ++f) {
            double v = fields[f].get(r.run.events);
            want << "        \"" << fields[f].name << "\": ";
            if (fields[f].cycles) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.0f", v);
                want << buf;
            } else {
                want << static_cast<std::uint64_t>(v);
            }
            want << (f + 1 < fields.size() ? ",\n" : "\n");
        }
        want << "      }\n    }";
    }
    want << "\n  ]\n}\n";
    EXPECT_EQ(os.str(), want.str());
}

TEST(FrameEmitters, PointsLinesMatchLegacyFormat)
{
    Scenario sc = twoAxisScenario();
    MetricFrame frame = buildMetricFrame(sc, twoAxisGrid());
    std::ostringstream os;
    writePoints(os, frame);
    EXPECT_EQ(os.str(),
              "machine=a workload=dense_mvm competitors=0 coords=workload.param.dim=64 "
              "ticks=400 valid=1\n"
              "machine=b workload=dense_mvm competitors=0 coords=workload.param.dim=64 "
              "ticks=200 valid=1\n"
              "machine=a workload=dense_mvm competitors=0 coords=workload.param.dim=96 "
              "ticks=800 valid=1\n"
              "machine=b workload=dense_mvm competitors=0 coords=workload.param.dim=96 "
              "ticks=200 valid=1\n");
}
