/**
 * @file
 * Unit tests for the Sequencer execution engine, run against a minimal
 * test environment (no kernel, no MISP processor).
 */

#include <gtest/gtest.h>

#include "cpu/sequencer.hh"
#include "isa/assembler.hh"
#include "mem/address_space.hh"
#include "sim/event_queue.hh"

using namespace misp;
using namespace misp::cpu;

namespace {

/** Environment that services page faults synchronously and records
 *  everything else. */
class TestEnv : public SequencerEnv
{
  public:
    explicit TestEnv(mem::AddressSpace &as) : as_(as) {}

    FaultAction
    handleFault(Sequencer &seq, const mem::Fault &fault,
                Cycles *extraCycles) override
    {
        (void)seq;
        lastFault = fault;
        ++faults;
        *extraCycles = 0;
        if (fault.kind == mem::FaultKind::PageFault) {
            if (as_.handleFault(fault.addr, fault.write) ==
                mem::FaultOutcome::Paged) {
                *extraCycles = 100;
                return FaultAction::Retry;
            }
            return FaultAction::Kill;
        }
        if (fault.kind == mem::FaultKind::Syscall) {
            syscalls.push_back(fault.code);
            seq.context().regs[0] = 0x5Ca11;
            return FaultAction::Continue;
        }
        return FaultAction::Kill;
    }

    Cycles
    handleRtCall(Sequencer &seq, Word service) override
    {
        (void)seq;
        rtcalls.push_back(service);
        return 5;
    }

    void
    signalInstruction(Sequencer &seq, SequencerId sid,
                      const SignalPayload &payload) override
    {
        (void)seq;
        signals.emplace_back(sid, payload);
    }

    void sequencerHalted(Sequencer &seq) override { (void)seq; ++halts; }

    unsigned numSequencers() const override { return 4; }

    mem::AddressSpace &as_;
    mem::Fault lastFault;
    int faults = 0;
    int halts = 0;
    std::vector<Word> syscalls;
    std::vector<Word> rtcalls;
    std::vector<std::pair<SequencerId, SignalPayload>> signals;
};

class SequencerTest : public ::testing::Test
{
  protected:
    SequencerTest()
        : pmem(1 << 14), root(""), as("p", pmem), env(as),
          seq("seq0", 0, true, eq, pmem, &root)
    {
        seq.setEnv(&env);
        seq.mmu().setAddressSpace(&as);
        as.defineRegion(0x10'0000, 16 * mem::kPageSize, true, "stack");
    }

    /** Load a program at 0x40'0000 and return its entry. */
    VAddr
    loadAsm(const std::string &src)
    {
        isa::Program prog = isa::assemble(src, 0x40'0000);
        as.defineRegion(prog.base, prog.byteSize() + 64, false, "code",
                        prog.bytes());
        return prog.base;
    }

    void
    runToCompletion(VAddr entry)
    {
        seq.startAt(entry, 0x10'0000 + 16 * mem::kPageSize - 64);
        eq.run();
    }

    Word reg(unsigned r) { return seq.context().regs[r]; }

    EventQueue eq;
    mem::PhysicalMemory pmem;
    stats::StatGroup root;
    mem::AddressSpace as;
    TestEnv env;
    Sequencer seq;
};

} // namespace

TEST_F(SequencerTest, ArithmeticAndFlags)
{
    VAddr entry = loadAsm(R"(
        movi r1, 6
        movi r2, 7
        mul  r3, r1, r2
        subi r4, r3, 2
        divi r5, r4, 10
        rem  r6, r4, r1
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(3), 42u);
    EXPECT_EQ(reg(4), 40u);
    EXPECT_EQ(reg(5), 4u);
    EXPECT_EQ(reg(6), 40u % 6u);
    EXPECT_EQ(seq.state(), SeqState::Halted);
    EXPECT_EQ(env.halts, 1);
}

TEST_F(SequencerTest, LoopsAndBranches)
{
    // sum 1..10
    VAddr entry = loadAsm(R"(
        movi r1, 0
        movi r2, 1
        loop:
            add r1, r1, r2
            addi r2, r2, 1
            cmpi r2, 10
            jcc.le loop
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(1), 55u);
}

TEST_F(SequencerTest, SignedComparisons)
{
    VAddr entry = loadAsm(R"(
        movi r1, -5
        movi r2, 3
        movi r3, 0
        cmp r1, r2
        jcc.lt neg
        movi r3, 111
        halt
        neg:
        movi r3, 222
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(3), 222u);
}

TEST_F(SequencerTest, UnsignedComparisons)
{
    VAddr entry = loadAsm(R"(
        movi r1, -1      ; 0xFFFF... = huge unsigned
        movi r2, 3
        movi r3, 0
        cmp r1, r2
        jcc.uge big
        halt
        big:
        movi r3, 1
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(3), 1u);
}

TEST_F(SequencerTest, MemoryAndStack)
{
    VAddr entry = loadAsm(R"(
        movi r1, 0x100040
        movi r2, 0xBEEF
        st8 [r1], r2
        ld8 r3, [r1]
        push r3
        pop r4
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(3), 0xBEEFu);
    EXPECT_EQ(reg(4), 0xBEEFu);
    // Demand paging produced at least one fault on the data page.
    EXPECT_GE(env.faults, 1);
}

TEST_F(SequencerTest, CallAndRet)
{
    VAddr entry = loadAsm(R"(
        main:
            movi r1, 5
            call double_it
            halt
        double_it:
            add r1, r1, r1
            ret
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(1), 10u);
}

TEST_F(SequencerTest, AtomicsBehave)
{
    VAddr entry = loadAsm(R"(
        movi r1, 0x100080
        movi r2, 10
        st8 [r1], r2
        movi r3, 5
        fetchadd r4, [r1], r3     ; r4=10, mem=15
        ld8 r5, [r1]
        movi r6, 15
        movi r7, 99
        cmpxchg r6, [r1], r7      ; succeeds: mem=99, zf=1
        ld8 r8, [r1]
        movi r9, 123
        xchg r9, [r1]             ; r9=99, mem=123
        ld8 r10, [r1]
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(4), 10u);
    EXPECT_EQ(reg(5), 15u);
    EXPECT_EQ(reg(8), 99u);
    EXPECT_EQ(reg(9), 99u);
    EXPECT_EQ(reg(10), 123u);
}

TEST_F(SequencerTest, CmpXchgFailurePath)
{
    VAddr entry = loadAsm(R"(
        movi r1, 0x100080
        movi r2, 7
        st8 [r1], r2
        movi r3, 999     ; wrong expected value
        movi r4, 111
        cmpxchg r3, [r1], r4
        ld8 r5, [r1]
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(3), 7u); // loaded actual value
    EXPECT_EQ(reg(5), 7u); // memory unchanged
}

TEST_F(SequencerTest, DivideByZeroFaults)
{
    VAddr entry = loadAsm(R"(
        movi r1, 5
        movi r2, 0
        div r3, r1, r2
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(env.lastFault.kind, mem::FaultKind::DivideError);
    EXPECT_EQ(seq.state(), SeqState::Halted); // TestEnv kills
}

TEST_F(SequencerTest, SyscallTrapsWithNumberAndContinues)
{
    VAddr entry = loadAsm(R"(
        syscall 42
        movi r2, 1
        halt
    )");
    runToCompletion(entry);
    ASSERT_EQ(env.syscalls.size(), 1u);
    EXPECT_EQ(env.syscalls[0], 42u);
    EXPECT_EQ(reg(0), 0x5Ca11u); // return value patched by env
    EXPECT_EQ(reg(2), 1u);       // execution continued
}

TEST_F(SequencerTest, RtCallDispatchesToEnv)
{
    VAddr entry = loadAsm(R"(
        rtcall 7
        rtcall 9
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(env.rtcalls, (std::vector<Word>{7, 9}));
}

TEST_F(SequencerTest, SignalInstructionReachesEnv)
{
    VAddr entry = loadAsm(R"(
        movi r1, 2         ; sid
        movi r2, 0x5000    ; eip
        movi r3, 0x6000    ; esp
        signal r1, r2, r3
        halt
    )");
    runToCompletion(entry);
    ASSERT_EQ(env.signals.size(), 1u);
    EXPECT_EQ(env.signals[0].first, 2u);
    EXPECT_EQ(env.signals[0].second.eip, 0x5000u);
    EXPECT_EQ(env.signals[0].second.esp, 0x6000u);
}

TEST_F(SequencerTest, SeqIdAndNumSeq)
{
    VAddr entry = loadAsm(R"(
        seqid r1
        numseq r2
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(reg(1), 0u);
    EXPECT_EQ(reg(2), 4u);
}

TEST_F(SequencerTest, ComputeBurnsCycles)
{
    VAddr entry = loadAsm(R"(
        rdtick r1
        compute 10000
        rdtick r2
        halt
    )");
    runToCompletion(entry);
    EXPECT_GE(reg(2) - reg(1), 10000u);
}

TEST_F(SequencerTest, YieldConditionalRoundTrip)
{
    // Register an ingress handler, then receive a signal mid-execution:
    // the handler must observe the payload and YRET back.
    VAddr entry = loadAsm(R"(
        main:
            semonitor ingress, handler
            movi r1, 0
        spin:
            addi r1, r1, 1
            cmpi r1, 2000
            jcc.lt spin
            halt
        handler:
            mov r5, r11      ; payload arg
            mov r6, r12      ; payload eip
            movi r7, 777
            yret
    )");
    seq.startAt(entry, 0x10'0000 + 16 * mem::kPageSize - 64);
    // Deliver a signal while the spin loop runs.
    eq.scheduleLambda(500, "sig", [this] {
        SignalPayload p;
        p.eip = 0xAAAA;
        p.esp = 0xBBBB;
        p.arg = 9;
        seq.deliverSignal(p);
    });
    eq.run();
    EXPECT_EQ(reg(5), 9u);
    EXPECT_EQ(reg(6), 0xAAAAu);
    EXPECT_EQ(reg(7), 777u);
    EXPECT_EQ(reg(1), 2000u); // spin loop still completed
}

TEST_F(SequencerTest, BankedRegistersRestoredAfterHandler)
{
    VAddr entry = loadAsm(R"(
        main:
            semonitor ingress, handler
            movi r10, 1010
            movi r11, 1111
            movi r12, 1212
            movi r13, 1313
            movi r1, 0
        spin:
            addi r1, r1, 1
            cmpi r1, 2000
            jcc.lt spin
            halt
        handler:
            yret
    )");
    seq.startAt(entry, 0x10'0000 + 16 * mem::kPageSize - 64);
    eq.scheduleLambda(700, "sig", [this] {
        SignalPayload p;
        seq.deliverSignal(p);
    });
    eq.run();
    // The fly-weight transfer must be transparent to the interrupted
    // stream's payload registers.
    EXPECT_EQ(reg(10), 1010u);
    EXPECT_EQ(reg(11), 1111u);
    EXPECT_EQ(reg(12), 1212u);
    EXPECT_EQ(reg(13), 1313u);
}

TEST_F(SequencerTest, SignalToIdleSequencerStartsContinuation)
{
    VAddr entry = loadAsm(R"(
        worker:
            mov r5, r2    ; arg
            halt
    )");
    SignalPayload p;
    p.eip = entry;
    p.esp = 0x10'0000 + 16 * mem::kPageSize - 64;
    p.arg = 31337;
    EXPECT_TRUE(seq.idle());
    seq.deliverSignal(p);
    eq.run();
    EXPECT_EQ(reg(5), 31337u);
    EXPECT_EQ(seq.state(), SeqState::Halted);
}

TEST_F(SequencerTest, SignalWithoutTriggerQueues)
{
    VAddr entry = loadAsm(R"(
        movi r1, 0
        spin:
            addi r1, r1, 1
            cmpi r1, 100
            jcc.lt spin
        halt
    )");
    seq.startAt(entry, 0x10'0000 + 16 * mem::kPageSize - 64);
    eq.scheduleLambda(50, "sig", [this] {
        SignalPayload p;
        seq.deliverSignal(p);
    });
    eq.run();
    // No IngressSignal trigger registered: the payload stays queued.
    EXPECT_EQ(seq.pendingSignals(), 1u);
}

TEST_F(SequencerTest, SuspendResumeAccountsTime)
{
    VAddr entry = loadAsm(R"(
        movi r1, 0
        spin:
            addi r1, r1, 1
            cmpi r1, 100000
            jcc.lt spin
        halt
    )");
    seq.startAt(entry, 0x10'0000 + 16 * mem::kPageSize - 64);
    eq.scheduleLambda(1000, "suspend", [this] { seq.suspend(); });
    eq.scheduleLambda(6000, "resume", [this] {
        EXPECT_EQ(seq.state(), SeqState::Suspended);
        seq.resume();
    });
    eq.run();
    EXPECT_EQ(seq.state(), SeqState::Halted);
    EXPECT_GT(seq.suspendedCycles(), 3000u);
    EXPECT_LT(seq.suspendedCycles(), 6000u);
}

TEST_F(SequencerTest, SuspendResumeWithinSliceCancels)
{
    VAddr entry = loadAsm(R"(
        movi r1, 0
        spin:
            addi r1, r1, 1
            cmpi r1, 50000
            jcc.lt spin
        halt
    )");
    seq.startAt(entry, 0x10'0000 + 16 * mem::kPageSize - 64);
    eq.scheduleLambda(1000, "s", [this] {
        seq.suspend();
        seq.resume(); // before the slice boundary
    });
    eq.run();
    EXPECT_EQ(seq.state(), SeqState::Halted);
    EXPECT_EQ(reg(1), 50000u);
}

TEST_F(SequencerTest, YretOutsideHandlerIsFault)
{
    VAddr entry = loadAsm(R"(
        yret
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(env.lastFault.kind, mem::FaultKind::GeneralProtection);
}

TEST_F(SequencerTest, ParkAndRestartFromContext)
{
    VAddr entry = loadAsm(R"(
        movi r1, 1
        halt
    )");
    SequencerContext ctx;
    ctx.eip = entry;
    ctx.sp() = 0x10'0000 + 16 * mem::kPageSize - 64;
    seq.restartFromContext(ctx);
    eq.run();
    EXPECT_EQ(reg(1), 1u);
}

TEST_F(SequencerTest, InstructionCountsTracked)
{
    VAddr entry = loadAsm(R"(
        movi r1, 1
        movi r2, 2
        add r3, r1, r2
        halt
    )");
    runToCompletion(entry);
    EXPECT_EQ(seq.instsRetired(), 4u);
    EXPECT_GT(seq.busyCycles(), 0u);
}
