/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

using namespace misp;

namespace {

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::string name, std::vector<std::string> &log,
                   int priority = kPrioDefault)
        : Event(std::move(name), priority), log_(log)
    {}

    void process() override { log_.push_back(name()); }

  private:
    std::vector<std::string> &log_;
};

} // namespace

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log), b("b", log), c("c", log);
    eq.schedule(&a, 30);
    eq.schedule(&b, 10);
    eq.schedule(&c, 20);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b", "c", "a"}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent low("low", log, Event::kPrioStats);
    RecordingEvent first("first", log, Event::kPrioDefault);
    RecordingEvent second("second", log, Event::kPrioDefault);
    RecordingEvent irq("irq", log, Event::kPrioInterrupt);
    eq.schedule(&low, 5);
    eq.schedule(&first, 5);
    eq.schedule(&second, 5);
    eq.schedule(&irq, 5);
    eq.run();
    EXPECT_EQ(log,
              (std::vector<std::string>{"irq", "first", "second", "low"}));
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.schedule(&a, 10);
    eq.run();
    RecordingEvent b("b", log);
    EXPECT_THROW(eq.schedule(&b, 5), SimError);
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), SimError);
    eq.deschedule(&a);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log), b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b"}));
}

TEST(EventQueue, DescheduleUnscheduledPanics)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    EXPECT_THROW(eq.deschedule(&a), SimError);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log), b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<std::string>{"b", "a"}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, LambdaEventsRunAndAreOwned)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleLambda(5, "inc", [&count] { ++count; });
    eq.scheduleLambda(6, "inc", [&count] { ++count; });
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    std::function<void()> chain = [&] {
        ticks.push_back(eq.curTick());
        if (ticks.size() < 5)
            eq.scheduleLambda(eq.curTick() + 10, "chain", chain);
    };
    eq.scheduleLambda(0, "chain", chain);
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, MaxTickStopsBeforeProcessing)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log), b("b", log);
    eq.schedule(&a, 10);
    eq.schedule(&b, 100);
    eq.run(50);
    EXPECT_EQ(log, (std::vector<std::string>{"a"}));
    EXPECT_TRUE(b.scheduled());
    eq.deschedule(&b);
}

TEST(EventQueue, RequestStopEndsRun)
{
    EventQueue eq;
    int after = 0;
    eq.scheduleLambda(10, "stop", [&eq] { eq.requestStop(); });
    eq.scheduleLambda(20, "after", [&after] { ++after; });
    eq.run();
    EXPECT_EQ(after, 0);
    // A later run picks the remaining event up again.
    eq.run();
    EXPECT_EQ(after, 1);
}

TEST(EventQueue, StepProcessesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.scheduleLambda(1, "a", [&count] { ++count; });
    eq.scheduleLambda(2, "b", [&count] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, SquashSkipsPendingOccurrence)
{
    EventQueue eq;
    std::vector<std::string> log;
    RecordingEvent a("a", log);
    eq.schedule(&a, 10);
    a.squash();
    eq.run();
    EXPECT_TRUE(log.empty());
}

TEST(EventQueue, NumProcessedCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.scheduleLambda(i, "e", [] {});
    eq.run();
    EXPECT_EQ(eq.numProcessed(), 7u);
}
