/**
 * @file
 * Sharded-sweep merge tests: the deterministic grid partition
 * (--shard k/N), the shard dump writer/reader round-trip, the
 * fail-closed merge validation (corrupt dumps, overlaps, gaps,
 * config-hash mismatches — each diagnostic naming the offending
 * file), degraded-shard merges preserving failed/attempts/status
 * with survivor rows byte-identical to a clean serial run, and the
 * shared JSON quoting/number helpers both emitters and the merge
 * reader lean on for byte-identity.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "driver/runner.hh"
#include "driver/scenario.hh"
#include "driver/shard.hh"
#include "driver/spec.hh"
#include "harness/experiment.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace misp;
using namespace misp::driver;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuietLogging(true); }
};

const ::testing::Environment *const kQuietEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

/** A small two-machine, two-axis sweep: 4 combinations x 2 machines
 *  = 8 points, the smallest grid where a 3-way shard split leaves
 *  shards with unequal point counts. */
const char *kSpec = R"(
[scenario]
name = shardtest
title = shard-merge test sweep

[machine 1p]
processors = 0
backend = os

[machine misp]
processors = 3
backend = shred

[workload]
name = dense_mvm
scale = 1

[sweep]
machine.signal_cycles = 1000, 1040
workload.workers = 1, 2

[report]
baseline_machine = 1p
)";

Scenario
testScenario()
{
    SpecFile spec;
    Scenario sc;
    std::string err;
    EXPECT_TRUE(SpecFile::parse(kSpec, "<test>", &spec, &err)) << err;
    EXPECT_TRUE(Scenario::fromSpec(spec, &sc, &err)) << err;
    return sc;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

/** Run the whole grid once (serial, in-process); cached because every
 *  merge test slices the same results. */
struct GridRun {
    Scenario sc;
    std::vector<ScenarioPoint> points;
    std::vector<PointResult> results;
};

const GridRun &
gridRun()
{
    static GridRun *run = [] {
        GridRun *r = new GridRun;
        r->sc = testScenario();
        std::string err;
        EXPECT_TRUE(r->sc.expandPoints(false, &r->points, &err)) << err;
        RunnerOptions opts;
        opts.hostLines = false;
        r->results = ScenarioRunner(opts).runAll(r->sc, r->points);
        return r;
    }();
    return *run;
}

std::string
serialMetrics(const GridRun &run)
{
    harness::MetricFrame frame = buildMetricFrame(run.sc, run.results);
    std::ostringstream os;
    writeMetricsJson(os, run.sc, false, frame);
    return os.str();
}

/** Shard k/N's dump text, built from @p results (defaults to the
 *  cached grid's — degraded tests pass a doctored copy). */
std::string
shardDumpText(const GridRun &run, std::size_t k, std::size_t n,
              const std::vector<PointResult> *doctored = nullptr)
{
    const std::vector<PointResult> &all =
        doctored ? *doctored : run.results;
    ShardSpec shard{k, n};
    std::vector<std::size_t> indices = shardPointIndices(
        shard, run.points.size(), run.sc.machines.size());
    std::vector<PointResult> mine;
    for (std::size_t g : indices)
        mine.push_back(all[g]);
    harness::MetricFrame frame = buildMetricFrame(run.sc, mine);
    std::ostringstream os;
    writeShardMetricsJson(os, run.sc, false, frame, shard,
                          run.points.size(),
                          gridConfigHash(run.sc, run.points), indices);
    return os.str();
}

std::string
writeDump(const std::string &name, const std::string &text)
{
    const std::string path = tempPath(name);
    std::ofstream os(path, std::ios::binary);
    os << text;
    return path;
}

std::string
mergeMetrics(const GridRun &run, const std::vector<std::string> &paths,
             std::string *err)
{
    std::vector<ShardDump> dumps;
    for (const std::string &p : paths) {
        ShardDump dump;
        if (!readShardDump(p, &dump, err))
            return "";
        dumps.push_back(std::move(dump));
    }
    harness::MetricFrame frame;
    if (!mergeShardDumps(run.sc, false, run.points, dumps, &frame,
                         err))
        return "";
    std::ostringstream os;
    writeMetricsJson(os, run.sc, false, frame);
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Shard spec + partition
// ---------------------------------------------------------------------

TEST(ShardSpec, ParsesAndRejects)
{
    ShardSpec s;
    std::string err;
    EXPECT_TRUE(parseShardSpec("0/4", &s, &err));
    EXPECT_EQ(s.index, 0u);
    EXPECT_EQ(s.count, 4u);
    EXPECT_TRUE(parseShardSpec("3/4", &s, &err));
    EXPECT_EQ(s.index, 3u);

    EXPECT_FALSE(parseShardSpec("4/4", &s, &err));
    EXPECT_NE(err.find("out of range"), std::string::npos);
    EXPECT_FALSE(parseShardSpec("0/0", &s, &err));
    EXPECT_FALSE(parseShardSpec("1", &s, &err));
    EXPECT_FALSE(parseShardSpec("a/b", &s, &err));
    EXPECT_FALSE(parseShardSpec("/2", &s, &err));
}

TEST(ShardSpec, PartitionCoversDisjointAndKeepsGroupsWhole)
{
    const std::size_t machines = 2, total = 14; // 7 combos
    std::vector<int> owner(total, -1);
    for (std::size_t k = 0; k < 3; ++k) {
        for (std::size_t g :
             shardPointIndices(ShardSpec{k, 3}, total, machines)) {
            ASSERT_LT(g, total);
            EXPECT_EQ(owner[g], -1) << "point " << g << " owned twice";
            owner[g] = static_cast<int>(k);
        }
    }
    for (std::size_t g = 0; g < total; ++g) {
        EXPECT_NE(owner[g], -1) << "point " << g << " unowned";
        // Both machines of one combination land on the same shard.
        EXPECT_EQ(owner[g], owner[g - g % machines]);
    }
}

// ---------------------------------------------------------------------
// Clean merge: byte-identical to the serial run
// ---------------------------------------------------------------------

TEST(ShardMerge, MergedFrameIsByteIdenticalToSerial)
{
    const GridRun &run = gridRun();
    const std::string serial = serialMetrics(run);

    // 3-way split of 4 combos: shard 0 gets two combos, 1 and 2 one
    // each — exercises unequal shard sizes.
    std::vector<std::string> paths;
    for (std::size_t k = 0; k < 3; ++k)
        paths.push_back(writeDump("sm_clean" + std::to_string(k) +
                                      ".json",
                                  shardDumpText(run, k, 3)));
    std::string err;
    const std::string merged = mergeMetrics(run, paths, &err);
    EXPECT_EQ(merged, serial) << err;
}

TEST(ShardMerge, SingleShardRoundTrips)
{
    const GridRun &run = gridRun();
    std::vector<std::string> paths = {
        writeDump("sm_single.json", shardDumpText(run, 0, 1))};
    std::string err;
    EXPECT_EQ(mergeMetrics(run, paths, &err), serialMetrics(run))
        << err;
}

// ---------------------------------------------------------------------
// Degraded shards: failure columns survive the merge
// ---------------------------------------------------------------------

TEST(ShardMerge, DegradedShardPreservesFailureColumns)
{
    const GridRun &run = gridRun();

    // Doctor one misp row (not the baseline machine, so every other
    // row's speedup denominator is untouched) into a supervised
    // crash after 3 attempts.
    std::vector<PointResult> doctored = run.results;
    std::size_t victim = harness::MetricFrame::npos;
    for (std::size_t i = 0; i < doctored.size(); ++i) {
        if (doctored[i].machine == "misp") {
            victim = i;
            break;
        }
    }
    ASSERT_NE(victim, harness::MetricFrame::npos);
    doctored[victim].run.status = harness::RunStatus::WorkerCrashed;
    doctored[victim].run.valid = false;
    doctored[victim].run.attempts = 3;

    std::vector<std::string> paths;
    for (std::size_t k = 0; k < 2; ++k)
        paths.push_back(writeDump("sm_degraded" + std::to_string(k) +
                                      ".json",
                                  shardDumpText(run, k, 2, &doctored)));

    std::vector<ShardDump> dumps;
    std::string err;
    for (const std::string &p : paths)
        ASSERT_TRUE(readShardDump(p, &dumps.emplace_back(), &err))
            << err;
    harness::MetricFrame merged;
    ASSERT_TRUE(mergeShardDumps(run.sc, false, run.points, dumps,
                                &merged, &err))
        << err;

    // The degraded row keeps its status and failure columns.
    EXPECT_EQ(merged.row(victim).status,
              harness::RunStatus::WorkerCrashed);
    EXPECT_EQ(merged.at(victim, "failed"), 1.0);
    EXPECT_EQ(merged.at(victim, "attempts"), 3.0);
    EXPECT_EQ(merged.at(victim, "valid"), 0.0);

    // Every survivor row is byte-identical to the clean serial run:
    // same status and the same *emitted* value for every metric
    // (byte-identity is an artifact contract — merged values have
    // been through the dump's 9-significant-digit rendering, which
    // writeJsonNumber makes a fixed point).
    auto render = [](double v) {
        std::ostringstream os;
        stats::writeJsonNumber(os, v);
        return os.str();
    };
    harness::MetricFrame clean =
        buildMetricFrame(run.sc, run.results);
    ASSERT_EQ(merged.numRows(), clean.numRows());
    for (std::size_t r = 0; r < merged.numRows(); ++r) {
        if (r == victim)
            continue;
        EXPECT_EQ(merged.row(r).status, clean.row(r).status);
        for (const std::string &metric : clean.metrics())
            EXPECT_EQ(render(merged.at(r, metric)),
                      render(clean.at(r, metric)))
                << "row " << r << " metric " << metric;
    }
}

// ---------------------------------------------------------------------
// Fail-closed validation: every rejection names the offending file
// ---------------------------------------------------------------------

TEST(ShardMerge, CorruptDumpFailsClosedNamingFile)
{
    const GridRun &run = gridRun();
    const std::string text = shardDumpText(run, 0, 2);
    const std::string path =
        writeDump("sm_corrupt.json", text.substr(0, text.size() / 2));
    ShardDump dump;
    std::string err;
    EXPECT_FALSE(readShardDump(path, &dump, &err));
    EXPECT_NE(err.find(path), std::string::npos) << err;
}

TEST(ShardMerge, MissingFileFailsClosed)
{
    ShardDump dump;
    std::string err;
    const std::string path = tempPath("sm_nonexistent.json");
    EXPECT_FALSE(readShardDump(path, &dump, &err));
    EXPECT_NE(err.find(path), std::string::npos) << err;
}

TEST(ShardMerge, OverlappingShardsRejected)
{
    const GridRun &run = gridRun();
    std::vector<std::string> paths = {
        writeDump("sm_ov0.json", shardDumpText(run, 0, 2)),
        writeDump("sm_ov0b.json", shardDumpText(run, 0, 2)),
    };
    std::string err;
    EXPECT_EQ(mergeMetrics(run, paths, &err), "");
    EXPECT_NE(err.find("overlaps"), std::string::npos) << err;
    EXPECT_NE(err.find("sm_ov0b.json"), std::string::npos) << err;
}

TEST(ShardMerge, MissingShardIsAGap)
{
    const GridRun &run = gridRun();
    std::vector<std::string> paths = {
        writeDump("sm_gap0.json", shardDumpText(run, 0, 3)),
        writeDump("sm_gap2.json", shardDumpText(run, 2, 3)),
    };
    std::string err;
    EXPECT_EQ(mergeMetrics(run, paths, &err), "");
    EXPECT_NE(err.find("missing"), std::string::npos) << err;
    EXPECT_NE(err.find("1/3"), std::string::npos) << err;
}

TEST(ShardMerge, ConfigHashMismatchRejectedNamingFile)
{
    const GridRun &run = gridRun();
    std::string text = shardDumpText(run, 0, 1);
    const std::string realHash = gridConfigHash(run.sc, run.points);
    const std::size_t at = text.find(realHash);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, realHash.size(), "deadbeefdeadbeef");
    std::vector<std::string> paths = {
        writeDump("sm_badhash.json", text)};
    std::string err;
    EXPECT_EQ(mergeMetrics(run, paths, &err), "");
    EXPECT_NE(err.find("config hash"), std::string::npos) << err;
    EXPECT_NE(err.find("sm_badhash.json"), std::string::npos) << err;
}

TEST(ShardMerge, TamperedIndicesRejected)
{
    const GridRun &run = gridRun();
    std::string text = shardDumpText(run, 0, 2);
    // Shard 0 of 2 over 4 combos x 2 machines owns 0,1,4,5.
    const std::size_t at = text.find("\"indices\": [0, 1, 4, 5]");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string("\"indices\": [0, 1, 4, 5]").size(),
                 "\"indices\": [0, 1, 4, 6]");
    std::vector<std::string> paths = {
        writeDump("sm_badidx.json", text),
        writeDump("sm_badidx1.json", shardDumpText(run, 1, 2)),
    };
    std::string err;
    EXPECT_EQ(mergeMetrics(run, paths, &err), "");
    EXPECT_NE(err.find("partition"), std::string::npos) << err;
    EXPECT_NE(err.find("sm_badidx.json"), std::string::npos) << err;
}

TEST(ShardMerge, WrongScenarioRejected)
{
    const GridRun &run = gridRun();
    std::string text = shardDumpText(run, 0, 1);
    const std::size_t at = text.find("\"scenario\": \"shardtest\"");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string("\"scenario\": \"shardtest\"").size(),
                 "\"scenario\": \"other\"");
    std::vector<std::string> paths = {
        writeDump("sm_badscn.json", text)};
    std::string err;
    EXPECT_EQ(mergeMetrics(run, paths, &err), "");
    EXPECT_NE(err.find("does not match"), std::string::npos) << err;
    EXPECT_NE(err.find("sm_badscn.json"), std::string::npos) << err;
}

TEST(ShardMerge, QuickModeMismatchRejected)
{
    const GridRun &run = gridRun();
    std::string text = shardDumpText(run, 0, 1);
    const std::size_t at = text.find("\"quick\": false");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string("\"quick\": false").size(),
                 "\"quick\": true");
    std::vector<std::string> paths = {
        writeDump("sm_badquick.json", text)};
    std::string err;
    EXPECT_EQ(mergeMetrics(run, paths, &err), "");
    EXPECT_NE(err.find("quick"), std::string::npos) << err;
    EXPECT_NE(err.find("sm_badquick.json"), std::string::npos) << err;
}

TEST(ShardMerge, RunStatusNamesRoundTrip)
{
    const harness::RunStatus all[] = {
        harness::RunStatus::Completed,
        harness::RunStatus::MaxTicksReached,
        harness::RunStatus::SnapshotError,
        harness::RunStatus::WorkerCrashed,
        harness::RunStatus::WorkerTimeout,
    };
    for (harness::RunStatus status : all) {
        harness::RunStatus parsed;
        ASSERT_TRUE(harness::runStatusFromName(
            harness::runStatusName(status), &parsed));
        EXPECT_EQ(parsed, status);
    }
    harness::RunStatus parsed;
    EXPECT_FALSE(harness::runStatusFromName("exploded", &parsed));
}

// ---------------------------------------------------------------------
// The shared JSON helpers (one copy; both emitters + the merge
// reader depend on their exact output for byte-identity)
// ---------------------------------------------------------------------

TEST(JsonHelpers, EscapeControlCharsAndQuotes)
{
    EXPECT_EQ(stats::jsonEscape("plain"), "plain");
    EXPECT_EQ(stats::jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(stats::jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(stats::jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(stats::jsonEscape(std::string("a\x01") + "b"),
              "a\\u0001b");
    EXPECT_EQ(stats::jsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonHelpers, Utf8PassesThroughUntouched)
{
    const std::string utf8 = "caf\xc3\xa9 \xe2\x86\x92 \xf0\x9f\x9a\x80";
    EXPECT_EQ(stats::jsonEscape(utf8), utf8);
    EXPECT_EQ(stats::jsonQuote(utf8), "\"" + utf8 + "\"");
}

TEST(JsonHelpers, QuoteAndStreamAgree)
{
    const std::string s = "x\n\"y\"\\z";
    std::ostringstream os;
    stats::writeJsonQuoted(os, s);
    EXPECT_EQ(os.str(), stats::jsonQuote(s));
}

TEST(JsonHelpers, NumbersIntegralAndRoundTrip)
{
    auto render = [](double v) {
        std::ostringstream os;
        stats::writeJsonNumber(os, v);
        return os.str();
    };
    EXPECT_EQ(render(0), "0");
    EXPECT_EQ(render(-3), "-3");
    EXPECT_EQ(render(92066845), "92066845");
    EXPECT_EQ(render(2e15), "2000000000000000");
    EXPECT_EQ(render(92.066845), "92.066845");
    EXPECT_EQ(render(4.38652499), "4.38652499");
    // The merge round-trip contract: parsing the rendered string back
    // through strtod and re-rendering is a fixed point.
    for (double v : {92.066845, 55318.954, 6.92168324, 1e-3, 0.5}) {
        const std::string once = render(v);
        EXPECT_EQ(render(std::strtod(once.c_str(), nullptr)), once);
    }
}
