/**
 * @file
 * Unit tests for the memory substrate: physical memory, page tables,
 * TLBs, address spaces and the MMU.
 */

#include <gtest/gtest.h>

#include "mem/address_space.hh"
#include "mem/mmu.hh"
#include "mem/page_table.hh"
#include "mem/paging.hh"
#include "mem/physical_memory.hh"
#include "mem/tlb.hh"
#include "sim/stats.hh"

using namespace misp;
using namespace misp::mem;

// ---------------------------------------------------------------------
// PhysicalMemory
// ---------------------------------------------------------------------

TEST(PhysicalMemory, AllocatesDistinctZeroedFrames)
{
    PhysicalMemory pm(16);
    auto f1 = pm.allocFrame();
    auto f2 = pm.allocFrame();
    EXPECT_NE(f1, f2);
    EXPECT_EQ(pm.framesUsed(), 2u);
    EXPECT_EQ(pm.read(f1 << kPageShift, 8), 0u);
}

TEST(PhysicalMemory, ReadWriteRoundTripAllSizes)
{
    PhysicalMemory pm(4);
    auto f = pm.allocFrame();
    PAddr base = f << kPageShift;
    pm.write(base, 0x11, 1);
    pm.write(base + 2, 0x2233, 2);
    pm.write(base + 4, 0x44556677, 4);
    pm.write(base + 8, 0x8899AABBCCDDEEFFull, 8);
    EXPECT_EQ(pm.read(base, 1), 0x11u);
    EXPECT_EQ(pm.read(base + 2, 2), 0x2233u);
    EXPECT_EQ(pm.read(base + 4, 4), 0x44556677u);
    EXPECT_EQ(pm.read(base + 8, 8), 0x8899AABBCCDDEEFFull);
}

TEST(PhysicalMemory, FreedFramesAreRecycledZeroed)
{
    PhysicalMemory pm(2);
    auto f1 = pm.allocFrame();
    pm.write(f1 << kPageShift, 0xDEAD, 8);
    pm.freeFrame(f1);
    auto f2 = pm.allocFrame();
    auto f3 = pm.allocFrame();
    // One of them must be the recycled frame and it must read zero.
    EXPECT_TRUE(f2 == f1 || f3 == f1);
    EXPECT_EQ(pm.read(f1 << kPageShift, 8), 0u);
}

TEST(PhysicalMemory, ExhaustionIsFatal)
{
    PhysicalMemory pm(2);
    pm.allocFrame();
    pm.allocFrame();
    EXPECT_THROW(pm.allocFrame(), SimError);
}

TEST(PhysicalMemory, BulkCopyCrossesFrames)
{
    PhysicalMemory pm(4);
    auto f1 = pm.allocFrame();
    auto f2 = pm.allocFrame();
    (void)f2;
    std::vector<std::uint8_t> data(kPageSize + 100, 0xAB);
    pm.writeBytes(f1 << kPageShift, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size(), 0);
    pm.readBytes(f1 << kPageShift, out.data(), out.size());
    EXPECT_EQ(data, out);
}

// ---------------------------------------------------------------------
// PageTable
// ---------------------------------------------------------------------

TEST(PageTable, MapsAndLooksUp)
{
    PageTable pt;
    EXPECT_EQ(pt.mappedPages(), 0u);
    pt.map(0x40'0000, 7, /*writable=*/true, /*user=*/true);
    const Pte *pte = pt.lookup(0x40'0123);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present);
    EXPECT_EQ(pte->frame, 7u);
    EXPECT_TRUE(pte->writable);
    EXPECT_EQ(pt.mappedPages(), 1u);
}

TEST(PageTable, UnmappedAddressHasNoPresentPte)
{
    PageTable pt;
    pt.map(0x40'0000, 1, true, true);
    const Pte *pte = pt.lookup(0x80'0000);
    // Either no leaf table or a non-present entry.
    EXPECT_TRUE(pte == nullptr || !pte->present);
}

TEST(PageTable, UnmapReturnsOldEntryAndFreesSlot)
{
    PageTable pt;
    pt.map(0x40'0000, 3, true, true);
    Pte old = pt.unmap(0x40'0000);
    EXPECT_TRUE(old.present);
    EXPECT_EQ(old.frame, 3u);
    EXPECT_EQ(pt.mappedPages(), 0u);
    const Pte *pte = pt.lookup(0x40'0000);
    EXPECT_TRUE(pte == nullptr || !pte->present);
}

TEST(PageTable, RootsAreUniquePerInstance)
{
    PageTable a, b;
    EXPECT_NE(a.root(), b.root());
    EXPECT_NE(a.root(), kNullRoot);
}

TEST(PageTable, DistinguishesNeighbouringPages)
{
    PageTable pt;
    pt.map(0x40'0000, 1, true, true);
    pt.map(0x40'1000, 2, true, true);
    EXPECT_EQ(pt.lookup(0x40'0FFF)->frame, 1u);
    EXPECT_EQ(pt.lookup(0x40'1000)->frame, 2u);
}

// ---------------------------------------------------------------------
// Tlb
// ---------------------------------------------------------------------

TEST(Tlb, HitAfterInsert)
{
    stats::StatGroup root("");
    Tlb tlb("tlb", 4, &root);
    EXPECT_EQ(tlb.lookup(0x1000), nullptr);
    Pte pte;
    pte.present = true;
    pte.frame = 9;
    tlb.insert(0x1000, pte);
    const Pte *hit = tlb.lookup(0x1FFF); // same page
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->frame, 9u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, ClockEvictionStaysWithinCapacity)
{
    // One set of kWays entries; pages map to the same set when their
    // VPNs are congruent modulo the set count (here: one set, so all).
    stats::StatGroup root("");
    Tlb tlb("tlb", Tlb::kWays, &root);
    ASSERT_EQ(tlb.capacity(), Tlb::kWays);
    Pte pte;
    pte.present = true;
    for (std::uint64_t i = 0; i < Tlb::kWays; ++i)
        tlb.insert(0x1000 * (i + 1), pte);
    EXPECT_EQ(tlb.size(), Tlb::kWays);
    // Over-fill: the clock evicts exactly one resident entry.
    tlb.insert(0x9000, pte);
    EXPECT_EQ(tlb.size(), Tlb::kWays);
    EXPECT_NE(tlb.lookup(0x9000), nullptr);
    unsigned survivors = 0;
    for (std::uint64_t i = 0; i < Tlb::kWays; ++i) {
        if (tlb.lookup(0x1000 * (i + 1)))
            ++survivors;
    }
    EXPECT_EQ(survivors, Tlb::kWays - 1);
}

TEST(Tlb, ClockPrefersUnreferencedVictim)
{
    stats::StatGroup root("");
    Tlb tlb("tlb", Tlb::kWays, &root);
    Pte pte;
    pte.present = true;
    for (std::uint64_t i = 0; i < Tlb::kWays; ++i)
        tlb.insert(0x1000 * (i + 1), pte);
    // A full sweep clears every reference bit and evicts the first way;
    // the re-armed entries (touched below) then survive the next sweep.
    tlb.insert(0x9000, pte);
    ASSERT_NE(tlb.lookup(0x9000), nullptr); // re-arm 0x9000
    // Entries not re-referenced since the sweep are preferred victims.
    tlb.insert(0xA000, pte);
    EXPECT_NE(tlb.lookup(0x9000), nullptr);
    EXPECT_NE(tlb.lookup(0xA000), nullptr);
}

TEST(Tlb, ReinsertSamePageDoesNotEvict)
{
    stats::StatGroup root("");
    Tlb tlb("tlb", Tlb::kWays, &root);
    Pte pte;
    pte.present = true;
    for (std::uint64_t i = 0; i < Tlb::kWays; ++i)
        tlb.insert(0x1000 * (i + 1), pte);
    pte.frame = 42;
    tlb.insert(0x1000, pte); // update in place
    EXPECT_EQ(tlb.size(), Tlb::kWays);
    const Pte *hit = tlb.lookup(0x1000);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->frame, 42u);
}

TEST(Tlb, StampAdvancesOnContentChange)
{
    // The execution engine's last-translation cache replays hits only
    // while stamp() is unchanged; every content change must advance it.
    stats::StatGroup root("");
    Tlb tlb("tlb", Tlb::kWays, &root);
    Pte pte;
    pte.present = true;
    std::uint64_t s0 = tlb.stamp();
    tlb.insert(0x1000, pte);
    std::uint64_t s1 = tlb.stamp();
    EXPECT_GT(s1, s0);
    EXPECT_EQ(tlb.stamp(), s1); // lookups do not change content
    tlb.lookup(0x1000);
    EXPECT_EQ(tlb.stamp(), s1);
    tlb.invalidatePage(0x1000);
    std::uint64_t s2 = tlb.stamp();
    EXPECT_GT(s2, s1);
    tlb.invalidatePage(0x1000); // absent: no content change
    EXPECT_EQ(tlb.stamp(), s2);
    tlb.flushAll();
    EXPECT_GT(tlb.stamp(), s2);
}

TEST(Tlb, InsertReturnsStableInstalledEntry)
{
    // insert() hands back the installed entry directly; the historical
    // map-backed TLB returned pointers that insert/evict could dangle.
    stats::StatGroup root("");
    Tlb tlb("tlb", Tlb::kWays, &root);
    Pte pte;
    pte.present = true;
    pte.frame = 7;
    const Pte *installed = tlb.insert(0x1000, pte);
    ASSERT_NE(installed, nullptr);
    EXPECT_EQ(installed->frame, 7u);
    // Filling the rest of the set must not invalidate the pointer's
    // storage (array entries never move).
    for (std::uint64_t i = 1; i < Tlb::kWays; ++i)
        tlb.insert(0x1000 * (i + 1), pte);
    EXPECT_EQ(installed->frame, 7u);
    EXPECT_EQ(tlb.lookup(0x1000), installed);
}

TEST(Tlb, FlushAllEmpties)
{
    stats::StatGroup root("");
    Tlb tlb("tlb", 4, &root);
    Pte pte;
    pte.present = true;
    tlb.insert(0x1000, pte);
    tlb.insert(0x2000, pte);
    tlb.flushAll();
    EXPECT_EQ(tlb.size(), 0u);
    EXPECT_EQ(tlb.lookup(0x1000), nullptr);
}

TEST(Tlb, InvalidatePageIsTargeted)
{
    stats::StatGroup root("");
    Tlb tlb("tlb", 4, &root);
    Pte pte;
    pte.present = true;
    tlb.insert(0x1000, pte);
    tlb.insert(0x2000, pte);
    tlb.invalidatePage(0x1234);
    EXPECT_EQ(tlb.lookup(0x1000), nullptr);
    EXPECT_NE(tlb.lookup(0x2000), nullptr);
}

// ---------------------------------------------------------------------
// AddressSpace
// ---------------------------------------------------------------------

TEST(AddressSpace, DemandPagesOnFault)
{
    PhysicalMemory pm(64);
    AddressSpace as("p", pm);
    as.defineRegion(0x40'0000, 3 * kPageSize, /*writable=*/true, "data");
    EXPECT_FALSE(as.mapped(0x40'0000));
    EXPECT_EQ(as.handleFault(0x40'0000, false), FaultOutcome::Paged);
    EXPECT_TRUE(as.mapped(0x40'0000));
    EXPECT_FALSE(as.mapped(0x40'1000));
    EXPECT_EQ(as.residentPages(), 1u);
}

TEST(AddressSpace, BadAccessOutsideVma)
{
    PhysicalMemory pm(64);
    AddressSpace as("p", pm);
    as.defineRegion(0x40'0000, kPageSize, true, "data");
    EXPECT_EQ(as.handleFault(0x90'0000, false), FaultOutcome::BadAccess);
}

TEST(AddressSpace, WriteToReadOnlyIsBadAccess)
{
    PhysicalMemory pm(64);
    AddressSpace as("p", pm);
    as.defineRegion(0x40'0000, kPageSize, /*writable=*/false, "code");
    EXPECT_EQ(as.handleFault(0x40'0000, /*write=*/true),
              FaultOutcome::BadAccess);
    EXPECT_EQ(as.handleFault(0x40'0000, /*write=*/false),
              FaultOutcome::Paged);
}

TEST(AddressSpace, ImageBackedRegionFaultsInContent)
{
    PhysicalMemory pm(64);
    AddressSpace as("p", pm);
    std::vector<std::uint8_t> image = {1, 2, 3, 4, 5};
    as.defineRegion(0x40'0000, 2 * kPageSize, false, "code", image);
    ASSERT_EQ(as.handleFault(0x40'0000, false), FaultOutcome::Paged);
    EXPECT_EQ(as.peekWord(0x40'0000, 1), 1u);
    EXPECT_EQ(as.peekWord(0x40'0004, 1), 5u);
    EXPECT_EQ(as.peekWord(0x40'0005, 1), 0u); // zero-fill beyond image
}

TEST(AddressSpace, OverlappingRegionsAreFatal)
{
    PhysicalMemory pm(64);
    AddressSpace as("p", pm);
    as.defineRegion(0x40'0000, 2 * kPageSize, true, "a");
    EXPECT_THROW(as.defineRegion(0x40'1000, kPageSize, true, "b"),
                 SimError);
}

TEST(AddressSpace, AllocRegionSeparatesWithGuardPages)
{
    PhysicalMemory pm(64);
    AddressSpace as("p", pm);
    VAddr a = as.allocRegion(100, true, "a");
    VAddr b = as.allocRegion(100, true, "b");
    EXPECT_GE(b, a + 2 * kPageSize); // region + guard page
    EXPECT_EQ(as.handleFault(a, true), FaultOutcome::Paged);
    // The guard page between them stays unmapped.
    EXPECT_EQ(as.handleFault(a + kPageSize, true),
              FaultOutcome::BadAccess);
}

TEST(AddressSpace, PrefaultTouchesWholeRange)
{
    PhysicalMemory pm(64);
    AddressSpace as("p", pm);
    as.defineRegion(0x40'0000, 4 * kPageSize, true, "data");
    EXPECT_EQ(as.prefault(0x40'0000, 4 * kPageSize), 4u);
    EXPECT_EQ(as.residentPages(), 4u);
    // Idempotent.
    EXPECT_EQ(as.prefault(0x40'0000, 4 * kPageSize), 0u);
}

TEST(AddressSpace, PokePeekRoundTrip)
{
    PhysicalMemory pm(64);
    AddressSpace as("p", pm);
    as.defineRegion(0x40'0000, 2 * kPageSize, true, "data");
    as.pokeWord(0x40'0FFC, 0xABCD, 4); // within first page
    EXPECT_EQ(as.peekWord(0x40'0FFC, 4), 0xABCDu);
    // Peek of unmapped page reads zero without mapping it.
    EXPECT_EQ(as.peekWord(0x40'1000, 8), 0u);
    EXPECT_FALSE(as.mapped(0x40'1000));
}

TEST(AddressSpace, DestructorFreesFrames)
{
    PhysicalMemory pm(64);
    {
        AddressSpace as("p", pm);
        as.defineRegion(0x40'0000, 8 * kPageSize, true, "data");
        as.prefault(0x40'0000, 8 * kPageSize);
        EXPECT_EQ(pm.framesUsed(), 8u);
    }
    EXPECT_EQ(pm.framesUsed(), 0u);
}

// ---------------------------------------------------------------------
// Mmu
// ---------------------------------------------------------------------

class MmuTest : public ::testing::Test
{
  protected:
    MmuTest() : pm(64), root(""), as("p", pm), mmu("mmu", pm, &root)
    {
        as.defineRegion(0x40'0000, 4 * kPageSize, true, "data");
        as.prefault(0x40'0000, 4 * kPageSize);
        mmu.setAddressSpace(&as);
    }

    PhysicalMemory pm;
    stats::StatGroup root;
    AddressSpace as;
    Mmu mmu;
};

TEST_F(MmuTest, ReadWriteRoundTrip)
{
    AccessResult w = mmu.write(0x40'0008, 0x1234, 8, Ring::User);
    EXPECT_FALSE(w.fault);
    AccessResult r = mmu.read(0x40'0008, 8, Ring::User);
    EXPECT_FALSE(r.fault);
    EXPECT_EQ(r.value, 0x1234u);
}

TEST_F(MmuTest, FirstAccessWalksThenTlbHits)
{
    mmu.read(0x40'0000, 8, Ring::User);
    EXPECT_EQ(mmu.pageWalks(), 1u);
    AccessResult r = mmu.read(0x40'0010, 8, Ring::User);
    EXPECT_EQ(mmu.pageWalks(), 1u); // TLB hit, no extra walk
    EXPECT_LT(r.cycles, PageTable::kWalkCycles);
}

TEST_F(MmuTest, UnmappedPageFaults)
{
    AccessResult r = mmu.read(0x90'0000, 8, Ring::User);
    ASSERT_TRUE(r.fault);
    EXPECT_EQ(r.fault.kind, FaultKind::PageFault);
    EXPECT_EQ(r.fault.addr, 0x90'0000u);
    EXPECT_FALSE(r.fault.write);
}

TEST_F(MmuTest, MisalignedAccessIsGeneralProtection)
{
    AccessResult r = mmu.read(0x40'0001, 8, Ring::User);
    ASSERT_TRUE(r.fault);
    EXPECT_EQ(r.fault.kind, FaultKind::GeneralProtection);
}

TEST_F(MmuTest, WriteFaultCarriesWriteFlag)
{
    AccessResult r = mmu.write(0x90'0000, 1, 8, Ring::User);
    ASSERT_TRUE(r.fault);
    EXPECT_TRUE(r.fault.write);
}

TEST_F(MmuTest, AddressSpaceSwitchFlushesTlb)
{
    mmu.read(0x40'0000, 8, Ring::User);
    EXPECT_GT(mmu.tlb().size(), 0u);
    AddressSpace other("q", pm);
    mmu.setAddressSpace(&other);
    EXPECT_EQ(mmu.tlb().size(), 0u);
}

TEST_F(MmuTest, SameRootPreserveTlbSkipsFlush)
{
    mmu.read(0x40'0000, 8, Ring::User);
    EXPECT_GT(mmu.tlb().size(), 0u);
    mmu.setAddressSpace(&as, /*preserveTlb=*/true);
    EXPECT_GT(mmu.tlb().size(), 0u);
}

TEST_F(MmuTest, DirtyAndAccessedBitsMaintained)
{
    mmu.write(0x40'0000, 5, 8, Ring::User);
    const Pte *pte = as.pageTable().lookup(0x40'0000);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->accessed);
    EXPECT_TRUE(pte->dirty);
}

TEST_F(MmuTest, FetchInstRequiresAlignment)
{
    std::uint8_t buf[16];
    AccessResult r = mmu.fetchInst(0x40'0008, buf, Ring::User);
    ASSERT_TRUE(r.fault);
    EXPECT_EQ(r.fault.kind, FaultKind::GeneralProtection);
    r = mmu.fetchInst(0x40'0010, buf, Ring::User);
    EXPECT_FALSE(r.fault);
}
