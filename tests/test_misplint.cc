/**
 * @file
 * misplint's own test suite.
 *
 * Two halves:
 *
 *  - Fixture corpus: tests/misplint_fixtures/ is a miniature source
 *    tree with one file per violation class (and two clean ones). The
 *    tests assert the exact (file, line, rule, symbol) tuples, so a
 *    tokenizer regression that shifts a line or drops a rule fails
 *    loudly, not silently. The fixtures are never compiled (the tests
 *    glob is non-recursive) and discover() excludes them from real
 *    scans.
 *
 *  - Self-scan: the live tree under MISPLINT_SOURCE_ROOT must be
 *    clean, every Saveable class the repo is known to carry must be
 *    inside the completeness rule's coverage, and the member count
 *    must be in a sane range — so coverage cannot silently collapse
 *    to zero while the "0 findings" gate stays green.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "misplint.hh"

namespace {

using misplint::Finding;
using misplint::Report;

/** (file, line, rule, symbol) — what the fixture tests pin down. */
using Key = std::tuple<std::string, int, std::string, std::string>;

Key
key(const Finding &f)
{
    return {f.file, f.line, f.rule, f.symbol};
}

const Report &
fixtureReport()
{
    static const Report report = [] {
        misplint::Options opts;
        opts.root = std::string(MISPLINT_SOURCE_ROOT) +
                    "/tests/misplint_fixtures";
        opts.paths = {"src"};
        return misplint::run(opts);
    }();
    return report;
}

std::vector<Key>
findingsIn(const std::string &file)
{
    std::vector<Key> out;
    for (const Finding &f : fixtureReport().findings)
        if (f.file == file)
            out.push_back(key(f));
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Fixture corpus — exact findings per violation class.
// ---------------------------------------------------------------------

TEST(MisplintFixtures, BannedRandAndTime)
{
    std::vector<Key> expected = {
        {"src/sim/banned_rand.cc", 12, "det-rand", "rand"},
        {"src/sim/banned_rand.cc", 13, "det-rand", "srand"},
        {"src/sim/banned_rand.cc", 15, "det-rand", "random_device"},
        {"src/sim/banned_rand.cc", 18, "det-time", "time"},
        {"src/sim/banned_rand.cc", 19, "det-time", "clock"},
        {"src/sim/banned_rand.cc", 21, "det-time", "chrono"},
    };
    EXPECT_EQ(findingsIn("src/sim/banned_rand.cc"), expected);
}

TEST(MisplintFixtures, UnorderedIterationAndPointerKeys)
{
    std::vector<Key> expected = {
        {"src/sim/unordered_emit.cc", 9, "det-ptr-key", "std::map"},
        {"src/sim/unordered_emit.cc", 13, "det-unordered-iter",
         "table_"},
        {"src/sim/unordered_emit.cc", 20, "det-unordered-iter",
         "table_"},
        // Line 27's range-for is covered by a misplint: allow
        // annotation — it must NOT appear here.
    };
    EXPECT_EQ(findingsIn("src/sim/unordered_emit.cc"), expected);
}

TEST(MisplintFixtures, LayeringAndChronoInclude)
{
    std::vector<Key> expected = {
        {"src/mem/bad_layering.cc", 6, "layer-include",
         "driver/runner.hh"},
        {"src/mem/bad_layering.cc", 7, "layer-include",
         "harness/run_record.hh"},
        // One finding, although the include line trips both the
        // include gate and the token scan.
        {"src/mem/bad_layering.cc", 8, "det-time", "chrono"},
    };
    EXPECT_EQ(findingsIn("src/mem/bad_layering.cc"), expected);
}

TEST(MisplintFixtures, HostClockOutsideSimulatedDirs)
{
    // src/driver/ is not a simulated dir, but the det-time scan covers
    // every non-allowlisted file under src/.
    std::vector<Key> expected = {
        {"src/driver/host_clock.cc", 8, "det-time", "gettimeofday"},
        {"src/driver/host_clock.cc", 9, "det-time", "getrusage"},
        {"src/driver/host_clock.cc", 10, "det-time", "clock"},
    };
    EXPECT_EQ(findingsIn("src/driver/host_clock.cc"), expected);
}

TEST(MisplintFixtures, ObsHostPlaneQuarantine)
{
    // Simulated code must not include the obs host plane; the
    // deterministic trace header is fine.
    std::vector<Key> expected = {
        {"src/os/bad_obs_include.cc", 5, "obs-host-plane",
         "obs/host_run_log.hh"},
    };
    EXPECT_EQ(findingsIn("src/os/bad_obs_include.cc"), expected);

    // src/obs/ outside the host_ prefix is simulated code...
    std::vector<Key> simObs = {
        {"src/obs/trace_rand.cc", 7, "det-rand", "rand"},
    };
    EXPECT_EQ(findingsIn("src/obs/trace_rand.cc"), simObs);

    // ...while host_-prefixed files may use the wall clock freely.
    EXPECT_TRUE(findingsIn("src/obs/host_wall_clock.cc").empty());
}

TEST(MisplintFixtures, SnapshotCompleteness)
{
    std::vector<Key> expected = {
        {"src/mem/missing_member.hh", 17, "snap-restore-missing",
         "lostBoth_"},
        {"src/mem/missing_member.hh", 17, "snap-save-missing",
         "lostBoth_"},
        {"src/mem/missing_member.hh", 18, "snap-restore-missing",
         "saveOnly_"},
        {"src/mem/missing_member.hh", 20, "snap-bad-annotation",
         "badKind_"},
    };
    EXPECT_EQ(findingsIn("src/mem/missing_member.hh"), expected);
}

TEST(MisplintFixtures, TagCodecPairing)
{
    std::vector<Key> expected = {
        {"src/snapshot/tags.hh", 9, "snap-tag-codec", "kNoCodec"},
        {"src/snapshot/tags.hh", 10, "snap-tag-codec", "kNoProducer"},
        {"src/snapshot/tags.hh", 11, "snap-tag-codec", "kDupValue"},
    };
    EXPECT_EQ(findingsIn("src/snapshot/tags.hh"), expected);
}

TEST(MisplintFixtures, CleanFilesStayClean)
{
    EXPECT_TRUE(findingsIn("src/sim/clean.cc").empty());
    EXPECT_TRUE(findingsIn("src/mem/annotated_derived.hh").empty());
    EXPECT_TRUE(findingsIn("src/snapshot/snapshot.cc").empty());
}

TEST(MisplintFixtures, NothingOutsideTheExpectedFiles)
{
    // The per-file tests above cover every file that should have
    // findings; this catches a rule firing somewhere unexpected.
    int total = 0;
    for (const char *file :
         {"src/sim/banned_rand.cc", "src/sim/unordered_emit.cc",
          "src/mem/bad_layering.cc", "src/mem/missing_member.hh",
          "src/snapshot/tags.hh", "src/driver/host_clock.cc",
          "src/os/bad_obs_include.cc", "src/obs/trace_rand.cc"})
        total += static_cast<int>(findingsIn(file).size());
    EXPECT_EQ(static_cast<int>(fixtureReport().findings.size()),
              total);
}

TEST(MisplintFixtures, ReportCounters)
{
    const Report &r = fixtureReport();
    EXPECT_EQ(r.filesScanned, 12);
    // Widget (missing_member.hh) and Cache (annotated_derived.hh).
    EXPECT_EQ(r.saveableClasses, 2);
    std::vector<std::string> names = r.saveableNames;
    std::sort(names.begin(), names.end());
    EXPECT_EQ(names, (std::vector<std::string>{"Cache", "Widget"}));
    // Widget: wiring_, kept_, lostBoth_, saveOnly_, badKind_;
    // Cache: mode_, window_, hostTicks_, ways_, drained_.
    EXPECT_EQ(r.membersChecked, 10);
    // 1 misplint: allow site + 5 snap:-annotated members (Cache's 4
    // plus Widget's badKind_, which is counted even though the kind
    // is unknown).
    EXPECT_EQ(r.suppressed, 6);
}

TEST(MisplintFixtures, OutputAndBaselineFormats)
{
    Finding f{"src/sim/banned_rand.cc", 12, "det-rand", "rand",
              "rand() is banned"};
    EXPECT_EQ(misplint::format(f),
              "src/sim/banned_rand.cc:12: det-rand rand() is banned");
    // The baseline key is line-number-free so baselines survive
    // unrelated edits above the finding.
    EXPECT_EQ(misplint::baselineKey(f),
              "src/sim/banned_rand.cc:det-rand:rand");
}

// ---------------------------------------------------------------------
// Self-scan — the live tree.
// ---------------------------------------------------------------------

TEST(MisplintSelfScan, LiveTreeIsClean)
{
    misplint::Options opts;
    opts.root = MISPLINT_SOURCE_ROOT;
    const Report r = misplint::run(opts);
    for (const Finding &f : r.findings)
        ADD_FAILURE() << misplint::format(f);
    EXPECT_TRUE(r.findings.empty());
}

TEST(MisplintSelfScan, CoverageDidNotCollapse)
{
    misplint::Options opts;
    opts.root = MISPLINT_SOURCE_ROOT;
    const Report r = misplint::run(opts);

    // Every class the repo archives must be inside the completeness
    // rule's coverage — if a parser regression drops one, this names
    // it instead of letting the clean verdict go hollow.
    for (const char *cls :
         {"AddressSpace", "Kernel", "MispProcessor", "Mmu",
          "OsApiRuntime", "PageTable", "PhysicalMemory", "Sequencer",
          "ShredRuntime", "Tlb"})
        EXPECT_NE(std::find(r.saveableNames.begin(),
                            r.saveableNames.end(), cls),
                  r.saveableNames.end())
            << cls << " fell out of snapshot-completeness coverage";

    EXPECT_GE(r.saveableClasses, 10);
    EXPECT_GE(r.membersChecked, 100);
    EXPECT_GT(r.filesScanned, 50);
}
