/**
 * @file
 * Snapshot subsystem tests: bit-exact round-trip determinism of the
 * machine-state image (warmup -> save -> restore -> run == the
 * uninterrupted run), the coherence edges the image must carry
 * faithfully (in-flight SIGNAL deliveries, TLB shootdowns, squashed
 * event-queue entries), fail-closed behavior on corrupted images, and
 * the serialization container itself.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "driver/runner.hh"
#include "harness/run_record.hh"
#include "sim/logging.hh"
#include "snapshot/snapshot.hh"
#include "snapshot/state_io.hh"

using namespace misp;

namespace {

class QuietEnv : public ::testing::Environment
{
  public:
    void SetUp() override { setQuietLogging(true); }
};

const ::testing::Environment *const kQuietEnv =
    ::testing::AddGlobalTestEnvironment(new QuietEnv);

/** A small but fully featured request: multi-shred target on a MISP
 *  processor, so the image must carry shred gangs, proxy traffic, and
 *  pending signal deliveries. */
harness::RunRequest
smallRequest()
{
    harness::RunRequest req;
    req.label = "snapshot_test";
    req.config = arch::SystemConfig::uniprocessor(3);
    req.config.physFrames = 1 << 16;
    req.backend = rt::Backend::Shred;
    req.target.name = "dense_mvm";
    req.target.params.workers = 3;
    req.hostLine = false;
    return req;
}

/** Simulated fields only — host timing legitimately differs. */
void
expectSameRecord(const harness::RunRecord &a, const harness::RunRecord &b)
{
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.instsRetired, b.instsRetired);
    for (const harness::EventField &f : harness::eventFields())
        EXPECT_EQ(f.get(a.events), f.get(b.events)) << f.name;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

} // namespace

// ---------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------

TEST(Serialize, RoundTripAndSectionIndex)
{
    snap::Serializer s;
    s.beginSection(7);
    s.u64(0xDEADBEEFCAFEF00Dull);
    s.str("hello");
    s.f64(3.25);
    s.endSection();
    s.beginSection(9);
    s.b(true);
    s.endSection();
    std::string image = s.done();

    snap::Deserializer d(image);
    EXPECT_TRUE(d.hasSection(9));
    EXPECT_FALSE(d.hasSection(8));
    d.openSection(7);
    EXPECT_EQ(d.u64(), 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(d.str(), "hello");
    EXPECT_EQ(d.f64(), 3.25);
    EXPECT_EQ(d.remaining(), 0u);
    d.openSection(9);
    EXPECT_TRUE(d.b());
}

TEST(Serialize, BadMagicAndCorruptionFailClosed)
{
    EXPECT_THROW(snap::Deserializer("not an image"), snap::SnapError);

    snap::Serializer s;
    s.beginSection(1);
    for (int i = 0; i < 64; ++i)
        s.u64(i);
    s.endSection();
    std::string image = s.done();

    // Flip one payload byte: the section CRC must catch it.
    std::string corrupt = image;
    corrupt[corrupt.size() - 9] ^= 0x40;
    snap::Deserializer d(corrupt);
    EXPECT_THROW(d.openSection(1), snap::SnapError);

    // Truncation is caught at parse time.
    EXPECT_THROW(snap::Deserializer(image.substr(0, image.size() - 8)),
                 snap::SnapError);

    // A hostile section size near 2^64 must not wrap the index cursor
    // back into bounds (it once segfaulted the CRC pass). The size
    // field of entry 0 sits after magic(8)+version(4)+count(4)+
    // id(4)+crc(4).
    std::string hostile = image;
    for (std::size_t i = 0; i < 8; ++i)
        hostile[24 + i] = static_cast<char>(i == 0 ? 0xF8 : 0xFF);
    EXPECT_THROW(snap::Deserializer{hostile}, snap::SnapError);
}

TEST(Serialize, ReadPastSectionEndThrows)
{
    snap::Serializer s;
    s.beginSection(1);
    s.u32(5);
    s.endSection();
    std::string image = s.done();
    snap::Deserializer d(image);
    d.openSection(1);
    EXPECT_EQ(d.u32(), 5u);
    EXPECT_THROW(d.u32(), snap::SnapError);
}

// ---------------------------------------------------------------------
// Round-trip determinism
// ---------------------------------------------------------------------

TEST(Snapshot, WarmupSaveRestoreBitIdentical)
{
    harness::RunRequest cold = smallRequest();
    harness::RunRecord coldRec = harness::runOne(cold);
    ASSERT_TRUE(coldRec.ok());

    // Save leg: warm up ~1/3 of the run, archive, keep running — must
    // already be indistinguishable from the cold run.
    const std::string image = tempPath("snapshot_roundtrip.misnap");
    harness::RunRequest save = smallRequest();
    save.snapshotOut = image;
    save.warmupTicks = coldRec.ticks / 3;
    harness::RunRecord saveRec = harness::runOne(save);
    ASSERT_TRUE(saveRec.ok()) << saveRec.note;
    expectSameRecord(coldRec, saveRec);

    // Restore leg: fork from the image, run to completion.
    harness::RunRequest warm = smallRequest();
    warm.snapshotIn = image;
    harness::RunRecord warmRec = harness::runOne(warm);
    ASSERT_TRUE(warmRec.ok()) << warmRec.note;
    expectSameRecord(coldRec, warmRec);

    // Fork-many: a second restore from the same image is just as good.
    harness::RunRecord warmRec2 = harness::runOne(warm);
    expectSameRecord(coldRec, warmRec2);
    std::remove(image.c_str());
}

TEST(Snapshot, CrossEngineSaveRestoreBitIdentical)
{
    // The host execution engine is not architectural state, so it must
    // never leak into an image: a snapshot warmed under one engine is
    // the same bytes as one warmed under another, and restores under
    // any engine to the same run.
    harness::RunRequest cold = smallRequest();
    cold.config.misp.engine = cpu::Engine::Reference;
    harness::RunRecord coldRec = harness::runOne(cold);
    ASSERT_TRUE(coldRec.ok());

    auto saveUnder = [&](cpu::Engine engine, const std::string &path) {
        harness::RunRequest save = smallRequest();
        save.config.misp.engine = engine;
        save.snapshotOut = path;
        save.warmupTicks = coldRec.ticks / 3;
        harness::RunRecord rec = harness::runOne(save);
        EXPECT_TRUE(rec.ok()) << rec.note;
        expectSameRecord(coldRec, rec);
    };
    const std::string imgSb = tempPath("snapshot_engine_sb.misnap");
    const std::string imgRef = tempPath("snapshot_engine_ref.misnap");
    saveUnder(cpu::Engine::Superblock, imgSb);
    saveUnder(cpu::Engine::Reference, imgRef);

    std::string bytesSb, bytesRef, err;
    ASSERT_TRUE(snap::readFileBytes(imgSb, &bytesSb, &err)) << err;
    ASSERT_TRUE(snap::readFileBytes(imgRef, &bytesRef, &err)) << err;
    std::size_t diffAt = 0;
    while (diffAt < bytesSb.size() && diffAt < bytesRef.size() &&
           bytesSb[diffAt] == bytesRef[diffAt])
        ++diffAt;
    EXPECT_TRUE(bytesSb == bytesRef)
        << "images are engine-dependent: sizes " << bytesSb.size()
        << " vs " << bytesRef.size() << ", first diff at byte "
        << diffAt;

    auto restoreUnder = [&](cpu::Engine engine,
                            const std::string &path) {
        harness::RunRequest warm = smallRequest();
        warm.config.misp.engine = engine;
        warm.snapshotIn = path;
        harness::RunRecord rec = harness::runOne(warm);
        EXPECT_TRUE(rec.ok()) << rec.note;
        expectSameRecord(coldRec, rec);
    };
    // Warm-save under superblock, restore under ref — and vice versa
    // (plus the middle engine for completeness).
    restoreUnder(cpu::Engine::Reference, imgSb);
    restoreUnder(cpu::Engine::Superblock, imgRef);
    restoreUnder(cpu::Engine::Cache, imgSb);

    std::remove(imgSb.c_str());
    std::remove(imgRef.c_str());
}

TEST(Snapshot, OsBackendRoundTrip)
{
    harness::RunRequest cold = smallRequest();
    cold.config = arch::SystemConfig::mp({0, 0, 0});
    cold.config.physFrames = 1 << 16;
    cold.backend = rt::Backend::OsThread;
    harness::RunRecord coldRec = harness::runOne(cold);
    ASSERT_TRUE(coldRec.ok());

    const std::string image = tempPath("snapshot_os.misnap");
    harness::RunRequest save = cold;
    save.snapshotOut = image;
    save.warmupTicks = coldRec.ticks / 2;
    harness::RunRecord saveRec = harness::runOne(save);
    ASSERT_TRUE(saveRec.ok()) << saveRec.note;
    expectSameRecord(coldRec, saveRec);

    harness::RunRequest warm = cold;
    warm.snapshotIn = image;
    harness::RunRecord warmRec = harness::runOne(warm);
    ASSERT_TRUE(warmRec.ok()) << warmRec.note;
    expectSameRecord(coldRec, warmRec);
    std::remove(image.c_str());
}

// ---------------------------------------------------------------------
// Fail-closed paths
// ---------------------------------------------------------------------

TEST(Snapshot, CorruptedImageYieldsSnapshotError)
{
    const std::string image = tempPath("snapshot_corrupt.misnap");
    harness::RunRequest save = smallRequest();
    save.snapshotOut = image;
    save.warmupTicks = 5'000'000;
    ASSERT_TRUE(harness::runOne(save).ok());

    std::string bytes, err;
    ASSERT_TRUE(snap::readFileBytes(image, &bytes, &err));
    bytes[bytes.size() / 2] ^= 0x1;
    ASSERT_TRUE(snap::writeFileBytes(image, bytes, &err));

    harness::RunRequest warm = smallRequest();
    warm.snapshotIn = image;
    harness::RunRecord rec = harness::runOne(warm);
    EXPECT_EQ(rec.status, harness::RunStatus::SnapshotError);
    EXPECT_FALSE(rec.valid);
    EXPECT_FALSE(rec.note.empty());
    std::remove(image.c_str());
}

TEST(Snapshot, ConfigMismatchFailsClosed)
{
    const std::string image = tempPath("snapshot_mismatch.misnap");
    harness::RunRequest save = smallRequest();
    save.snapshotOut = image;
    save.warmupTicks = 5'000'000;
    ASSERT_TRUE(harness::runOne(save).ok());

    // Same machine, different workload parameters: the image must be
    // rejected, not silently produce the wrong experiment's numbers.
    harness::RunRequest warm = smallRequest();
    warm.snapshotIn = image;
    warm.target.params.workers = 2;
    harness::RunRecord rec = harness::runOne(warm);
    EXPECT_EQ(rec.status, harness::RunStatus::SnapshotError);
    std::remove(image.c_str());
}

TEST(Snapshot, MissingImageFailsClosed)
{
    harness::RunRequest warm = smallRequest();
    warm.snapshotIn = tempPath("snapshot_missing.misnap");
    harness::RunRecord rec = harness::runOne(warm);
    EXPECT_EQ(rec.status, harness::RunStatus::SnapshotError);
}

TEST(Snapshot, WarmupPastCompletionFailsClosed)
{
    harness::RunRequest save = smallRequest();
    save.snapshotOut = tempPath("snapshot_late.misnap");
    save.warmupTicks = 2'000'000'000'000ull; // beyond any completion
    harness::RunRecord rec = harness::runOne(save);
    EXPECT_EQ(rec.status, harness::RunStatus::SnapshotError);
}

// ---------------------------------------------------------------------
// Coherence edges
// ---------------------------------------------------------------------

namespace {

/** Drive an experiment to @p warmupTicks + the next snapshot point,
 *  save, and hand back both the running experiment and the image. */
struct SplitRun {
    std::unique_ptr<harness::Experiment> exp;
    harness::LoadedProcess proc;
    std::string image;
};

SplitRun
warmUpAndSave(const harness::RunRequest &req, Tick warmupTicks,
              bool (*ready)(harness::Experiment &))
{
    SplitRun out;
    const wl::WorkloadInfo *info = wl::findWorkload(req.target.name);
    EXPECT_NE(info, nullptr);
    wl::Workload w = info->build(req.target.params);
    out.exp = std::make_unique<harness::Experiment>(req.config,
                                                    req.backend);
    out.proc = out.exp->load(w.app);
    out.exp->system().start();
    out.exp->system().run(warmupTicks);
    // Step to a snapshot point that also satisfies the edge the test
    // wants in flight.
    EventQueue &eq = out.exp->system().eventQueue();
    for (std::uint64_t guard = 0; guard < 2'000'000; ++guard) {
        if (snap::snapshotReady(*out.exp) && ready(*out.exp))
            break;
        if (!eq.step())
            break;
    }
    EXPECT_TRUE(snap::snapshotReady(*out.exp));
    std::string err;
    EXPECT_TRUE(snap::saveExperiment(*out.exp, out.proc.process, 0, "t",
                                     &out.image, &err))
        << err;
    return out;
}

bool
signalInFlight(harness::Experiment &exp)
{
    bool found = false;
    exp.system().eventQueue().forEachScheduled(
        [&](const EventQueue::ScheduledInfo &info) {
            found = found || (info.tag && info.tag->kind != 0 &&
                              info.ev->name() == "fabric.signal");
        });
    return found;
}

Tick
finishTo(harness::Experiment &exp, os::Process *target)
{
    harness::RunOutcome out = exp.resumeToCompletion(target);
    EXPECT_TRUE(out.completed());
    return out.ticks;
}

} // namespace

TEST(Snapshot, SaveAcrossInFlightSignalDelivery)
{
    // Save at a point where a wake SIGNAL is still traversing the
    // fabric (scheduled, undelivered): the image must carry it with
    // its exact delivery tick and queue ordering.
    harness::RunRequest req = smallRequest();
    SplitRun split = warmUpAndSave(req, 2'000'000, signalInFlight);
    ASSERT_TRUE(signalInFlight(*split.exp));

    snap::RestoredExperiment restored;
    std::string err;
    ASSERT_TRUE(snap::restoreExperiment(split.image, &restored, &err))
        << err;
    ASSERT_TRUE(signalInFlight(*restored.exp));

    Tick direct = finishTo(*split.exp, split.proc.process);
    Tick resumed = finishTo(*restored.exp, restored.target);
    EXPECT_EQ(direct, resumed);
}

TEST(Snapshot, SaveAcrossTlbShootdown)
{
    // Invalidate a hot page translation on every sequencer (the
    // shootdown a host poke to a mapped page would issue), snapshot,
    // and check the restored machine re-walks exactly as the original.
    harness::RunRequest req = smallRequest();
    SplitRun split =
        warmUpAndSave(req, 3'000'000, [](harness::Experiment &) {
            return true;
        });

    arch::MispProcessor &mp = split.exp->system().processor(0);
    os::OsThread *cur =
        split.exp->system().kernel().current(mp.cpuId());
    ASSERT_NE(cur, nullptr);
    VAddr code = cur->context().eip ? cur->context().eip : 0x40'0000;
    for (SequencerId sid = 0;; ++sid) {
        cpu::Sequencer *seq = mp.sequencer(sid);
        if (!seq)
            break;
        seq->mmu().invalidatePage(code);
    }
    std::string image, err;
    ASSERT_TRUE(snap::saveExperiment(*split.exp, split.proc.process, 0,
                                     "t", &image, &err))
        << err;

    snap::RestoredExperiment restored;
    ASSERT_TRUE(snap::restoreExperiment(image, &restored, &err)) << err;
    Tick direct = finishTo(*split.exp, split.proc.process);
    Tick resumed = finishTo(*restored.exp, restored.target);
    EXPECT_EQ(direct, resumed);
}

TEST(Snapshot, SquashedQueueEntriesStayOutOfTheImage)
{
    // A descheduled (squashed) occurrence leaves a stale heap entry;
    // the image must carry only the live schedule.
    EventQueue eq;
    LambdaEvent a("a", [] {});
    LambdaEvent b("b", [] {});
    eq.schedule(&a, 100);
    eq.schedule(&b, 200);
    eq.deschedule(&a); // squashed: stale entry remains in the heap
    eq.reschedule(&b, 300); // stale entry with the old seq remains

    std::size_t live = 0;
    eq.forEachScheduled([&](const EventQueue::ScheduledInfo &info) {
        ++live;
        EXPECT_EQ(info.ev, &b);
        EXPECT_EQ(info.when, Tick{300});
    });
    EXPECT_EQ(live, 1u);
    eq.deschedule(&b);
}

TEST(Snapshot, ProxyWaitRoundTrip)
{
    // Save while at least one AMS is mid-proxy (WaitingProxy or a
    // queued request): restore must reproduce the completion path.
    harness::RunRequest req = smallRequest();
    SplitRun split =
        warmUpAndSave(req, 1'000'000, [](harness::Experiment &exp) {
            arch::MispProcessor &mp = exp.system().processor(0);
            bool waiting = mp.proxyInFlight();
            for (unsigned i = 0; i < mp.numAms(); ++i) {
                waiting = waiting || mp.amsAt(i).state() ==
                                         cpu::SeqState::WaitingProxy;
            }
            return waiting;
        });

    snap::RestoredExperiment restored;
    std::string err;
    ASSERT_TRUE(snap::restoreExperiment(split.image, &restored, &err))
        << err;
    Tick direct = finishTo(*split.exp, split.proc.process);
    Tick resumed = finishTo(*restored.exp, restored.target);
    EXPECT_EQ(direct, resumed);
}

// ---------------------------------------------------------------------
// Crash-isolated worker backend
// ---------------------------------------------------------------------

namespace {

const char *kIsolateScn = R"(
[scenario]
name = isolate_test

[machine misp]
ams = 3
phys_frames = 65536

[workload]
name = dense_mvm

[sweep]
workload.workers = 1, 2, 3
)";

std::vector<driver::PointResult>
runIsolateScenario(const driver::RunnerOptions &opts)
{
    driver::SpecFile spec;
    driver::Scenario sc;
    std::vector<driver::ScenarioPoint> pts;
    std::string err;
    EXPECT_TRUE(
        driver::SpecFile::parse(kIsolateScn, "<test>", &spec, &err))
        << err;
    EXPECT_TRUE(driver::Scenario::fromSpec(spec, &sc, &err)) << err;
    EXPECT_TRUE(sc.expandPoints(false, &pts, &err)) << err;
    return driver::ScenarioRunner(opts).runAll(sc, pts);
}

} // namespace

TEST(Isolate, ForkedWorkersMatchInProcessRuns)
{
    driver::RunnerOptions serial;
    serial.hostLines = false;
    std::vector<driver::PointResult> inProc = runIsolateScenario(serial);

    driver::RunnerOptions iso = serial;
    iso.isolate = true;
    iso.jobs = 2;
    std::vector<driver::PointResult> forked = runIsolateScenario(iso);

    ASSERT_EQ(inProc.size(), forked.size());
    for (std::size_t i = 0; i < inProc.size(); ++i) {
        EXPECT_EQ(inProc[i].coords, forked[i].coords);
        expectSameRecord(inProc[i].run, forked[i].run);
    }
}

TEST(Isolate, CrashedWorkerFailsOnlyItsPoint)
{
    driver::RunnerOptions iso;
    iso.hostLines = false;
    iso.isolate = true;
    iso.jobs = 2;
    std::string err;
    ASSERT_TRUE(driver::FaultPlan::parse("crash@1", &iso.faults, &err))
        << err;
    std::vector<driver::PointResult> results = runIsolateScenario(iso);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].run.ok());
    EXPECT_EQ(results[1].run.status, harness::RunStatus::WorkerCrashed);
    EXPECT_FALSE(results[1].run.note.empty());
    EXPECT_TRUE(results[2].run.ok());
}

TEST(Isolate, SnapshotErrorTravelsBackFromWorker)
{
    driver::RunnerOptions iso;
    iso.hostLines = false;
    iso.isolate = true;
    iso.snapshotLoadDir = tempPath("isolate_no_such_dir");
    std::vector<driver::PointResult> results = runIsolateScenario(iso);
    ASSERT_EQ(results.size(), 3u);
    for (const driver::PointResult &r : results)
        EXPECT_EQ(r.run.status, harness::RunStatus::SnapshotError);
}

// ---------------------------------------------------------------------
// RunRecord wire codec (the --isolate pipe format)
// ---------------------------------------------------------------------

TEST(Snapshot, RunRecordCodecRoundTrip)
{
    harness::RunRecord rec;
    rec.status = harness::RunStatus::Completed;
    rec.ticks = 123456789;
    rec.valid = true;
    rec.instsRetired = 987654321;
    rec.events.omsSyscalls = 11;
    rec.events.amsPageFaults = 22;
    rec.events.serializeCycles = 1.5e9;
    rec.events.suspendedCycles = 3.25e8;
    rec.hostSeconds = 1.25;
    rec.hostMips = 790.1;
    rec.statsJson = "{\"x\": 1}";
    rec.note = "";
    rec.attempts = 3;

    harness::RunRecord back;
    std::string err;
    ASSERT_TRUE(
        snap::decodeRunRecord(snap::encodeRunRecord(rec), &back, &err))
        << err;
    expectSameRecord(rec, back);
    EXPECT_EQ(back.statsJson, rec.statsJson);
    EXPECT_EQ(back.hostSeconds, rec.hostSeconds);
    EXPECT_EQ(back.attempts, 3u);

    harness::RunRecord bad;
    EXPECT_FALSE(snap::decodeRunRecord("garbage", &bad, &err));

    // Truncated and trailing-garbage payloads fail closed.
    std::string wire = snap::encodeRunRecord(rec);
    EXPECT_FALSE(snap::decodeRunRecord(
        wire.substr(0, wire.size() / 2), &bad, &err));
    EXPECT_FALSE(snap::decodeRunRecord(wire + "x", &bad, &err));
}
