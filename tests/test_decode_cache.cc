/**
 * @file
 * Decode-cache coherence tests: the predecoded-block execution engine
 * must never execute stale instructions. Covered invalidation paths:
 *
 *  - self-modifying code: a guest store to a decoded page forces a
 *    re-decode before the next fetch from it;
 *  - host-side pokes (loaders/runtimes) obey the same rule;
 *  - CR3 / address-space switch: no block from another space is reused;
 *  - MISP serialization purge (TLB flush + decoded-block drop) resyncs
 *    with memory the modeled kernel changed;
 *  - and the engine is a pure host-side optimization: simulated cycles
 *    and retired counts are bit-identical with the engine on and off.
 */

#include <gtest/gtest.h>

#include <string>

#include "cpu/decode_cache.hh"
#include "cpu/sequencer.hh"
#include "harness/bare_machine.hh"
#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "mem/address_space.hh"
#include "workloads/workload.hh"

using namespace misp;

namespace {

/** One-sequencer machine with a writable code region (SMC tests). */
struct Machine : harness::BareMachine {
    Machine(const std::string &src,
            cpu::Engine engine = cpu::Engine::Cache)
        : harness::BareMachine(src, engine, /*writableCode=*/true)
    {}
};

// The guest overwrites the immediate field of a later instruction
// (bytes 8..15 of the 16-byte bundle), then executes it.
const char *kSmcSrc = R"(
    main:
        movi r5, target
        addi r5, r5, 8
        movi r6, 222
        st8 [r5+0], r6
    target:
        movi r0, 111
        halt
)";

} // namespace

TEST(DecodeCacheCoherence, SelfModifyingStoreForcesRedecode)
{
    Machine m(kSmcSrc, cpu::Engine::Cache);
    m.run();
    // Stale predecode would execute movi r0, 111.
    EXPECT_EQ(m.reg(0), 222u);
    EXPECT_GE(m.as.decodeCache().invalidations(), 1u);
    EXPECT_GE(m.as.decodeCache().pagesDecoded(), 2u); // initial + redecode
}

TEST(DecodeCacheCoherence, SmcMatchesReferencePathBitExactly)
{
    Machine ref(kSmcSrc, cpu::Engine::Reference);
    ref.run();
    EXPECT_EQ(ref.reg(0), 222u);
    for (cpu::Engine engine :
         {cpu::Engine::Cache, cpu::Engine::Superblock}) {
        Machine m(kSmcSrc, engine);
        m.run();
        EXPECT_EQ(m.reg(0), 222u) << cpu::engineName(engine);
        EXPECT_EQ(m.eq.curTick(), ref.eq.curTick())
            << cpu::engineName(engine);
        EXPECT_EQ(m.seq.instsRetired(), ref.seq.instsRetired());
        EXPECT_EQ(m.seq.busyCycles(), ref.seq.busyCycles());
    }
}

TEST(DecodeCacheCoherence, HostPokeInvalidatesDecodedPage)
{
    const char *src = R"(
        main:
            movi r0, 1
            halt
    )";
    for (cpu::Engine engine :
         {cpu::Engine::Cache, cpu::Engine::Superblock}) {
        Machine m(src, engine);
        m.run();
        EXPECT_EQ(m.reg(0), 1u) << cpu::engineName(engine);

        // Host-side rewrite of the first instruction's immediate (the
        // path loaders and runtimes use), then re-run from the same
        // address.
        Word newImm = 7;
        m.as.pokeWord(m.prog.symbol("main") + 8, newImm, 8);
        EXPECT_GE(m.as.decodeCache().invalidations(), 1u);
        m.run();
        EXPECT_EQ(m.reg(0), 7u) << cpu::engineName(engine);
    }
}

TEST(DecodeCacheCoherence, AddressSpaceSwitchNeverReusesBlocks)
{
    // Two address spaces with different code at the same VA; a CR3
    // write (setAddressSpace) between runs must never leak blocks.
    const char *srcA = "main:\n    movi r0, 1\n    halt\n";
    const char *srcB = "main:\n    movi r0, 2\n    halt\n";

    Machine m(srcA, cpu::Engine::Cache);
    mem::AddressSpace other("q", m.pmem);
    isa::Program progB = isa::assemble(srcB, 0x40'0000);
    other.defineRegion(progB.base, progB.byteSize() + 64, false, "code",
                       progB.bytes());

    m.run();
    EXPECT_EQ(m.reg(0), 1u);

    m.env.as = &other;
    m.seq.mmu().setAddressSpace(&other); // CR3 write: TLB purge
    m.seq.startAt(progB.symbol("main"), 0);
    m.eq.run();
    EXPECT_EQ(m.reg(0), 2u);

    // And back: space A's decoded page may be reused (it is still
    // coherent), but must again produce A's code.
    m.env.as = &m.as;
    m.seq.mmu().setAddressSpace(&m.as);
    m.seq.startAt(m.prog.symbol("main"), 0);
    m.eq.run();
    EXPECT_EQ(m.reg(0), 1u);
}

TEST(DecodeCacheCoherence, SerializationPurgeResyncsWithMemory)
{
    // Model the MISP serialization engine's purge (misp_processor's
    // SpeculativeMonitor path): the kernel changed guest memory during
    // a Ring-0 episode; the sequencer's TLB is flushed and its decoded
    // block dropped before it resumes.
    const char *src = R"(
        main:
            movi r0, 1
            halt
    )";
    Machine m(src, cpu::Engine::Cache);
    m.run();
    EXPECT_EQ(m.reg(0), 1u);

    // Ring-0 episode rewrites the code page behind the sequencer...
    std::array<std::uint8_t, isa::kInstBytes> bytes =
        isa::encode({isa::Opcode::MovI, 0, 0, 0, 0, 99});
    m.as.poke(m.prog.symbol("main"), bytes.data(), bytes.size());
    // ...and the serialization engine purges before resuming.
    m.seq.mmu().tlb().flushAll();
    m.seq.invalidateDecodedBlock();

    m.run();
    EXPECT_EQ(m.reg(0), 99u);
}

TEST(DecodeCacheCoherence, FullSystemIdenticalUnderSpeculativeMonitor)
{
    // End-to-end: the serialization policy that keeps AMSs running and
    // purges on CR3 change, with the engine on vs. off, must agree.
    const wl::WorkloadInfo *target = nullptr;
    for (const wl::WorkloadInfo &info : wl::allWorkloads()) {
        if (info.name == "dense_mvm")
            target = &info;
    }
    ASSERT_NE(target, nullptr);

    auto runOnce = [&](cpu::Engine engine) {
        wl::WorkloadParams params;
        params.workers = 7;
        wl::Workload w = target->build(params);
        arch::SystemConfig sys = arch::SystemConfig::uniprocessor(7);
        sys.misp.serialization =
            arch::SerializationPolicy::SpeculativeMonitor;
        sys.misp.engine = engine;
        harness::Experiment exp(sys, rt::Backend::Shred);
        harness::LoadedProcess proc = exp.load(w.app);
        Tick t = exp.runToCompletion(proc.process).ticks;
        EXPECT_TRUE(!w.validate ||
                    w.validate(proc.process->addressSpace()));
        return t;
    };

    Tick ref = runOnce(cpu::Engine::Reference);
    EXPECT_EQ(runOnce(cpu::Engine::Cache), ref);
    EXPECT_EQ(runOnce(cpu::Engine::Superblock), ref);
}

// ---------------------------------------------------------------------
// Chained-superblock invalidation: a block *linked from* a hot chain
// must not be reachable stale. Each scenario compares all three
// engines tick-for-tick, so a chain that survived an invalidation
// would show up as an architectural or timing divergence.
// ---------------------------------------------------------------------

namespace {

/** Loop whose body immediate is patched mid-run by the purge tests. */
std::string
chainLoopSrc(unsigned imm, unsigned iters)
{
    return "main:\n"
           "    movi r1, 0\n"
           "loop:\n"
           "    movi r3, " +
           std::to_string(imm) +
           "\n"
           "    add r4, r4, r3\n"
           "    addi r1, r1, 1\n"
           "    cmpi r1, " +
           std::to_string(iters) +
           "\n"
           "    jcc.lt loop\n"
           "    halt\n";
}

} // namespace

TEST(SuperblockChain, SmcIntoLinkedSuccessorBreaksChain)
{
    // A loop on code page 1 whose taken exit is a cross-page jmp to
    // `target` on page 2 — after the first traversal the superblock
    // engine holds a block-exit link straight to the successor block.
    // On iteration 3 the guest stores into `target`'s immediate; every
    // later traversal must execute the patched code even though the
    // exiting block still carries the (now version-stale) link.
    std::string src = R"(
        main:
            movi r1, 0
            movi r5, target
            addi r5, r5, 8
        loop:
            addi r1, r1, 1
            cmpi r1, 3
            jcc.ne skip
            movi r6, 999
            st8 [r5+0], r6
        skip:
            jmp target
        back:
            cmpi r1, 6
            jcc.lt loop
            halt
    )";
    // Pad (never-executed, after halt) so `target` lands on the next
    // 256-slot code page and the jmp really is a cross-page link.
    for (int i = 0; i < 300; ++i)
        src += "    nop\n";
    src += R"(
        target:
            movi r3, 111
            jmp back
    )";

    Machine ref(src, cpu::Engine::Reference);
    ref.run();
    EXPECT_EQ(ref.reg(1), 6u);
    EXPECT_EQ(ref.reg(3), 999u); // stale chain would leave 111

    for (cpu::Engine engine :
         {cpu::Engine::Cache, cpu::Engine::Superblock}) {
        Machine m(src, engine);
        m.run();
        EXPECT_EQ(m.reg(3), 999u) << cpu::engineName(engine);
        EXPECT_EQ(m.reg(1), 6u) << cpu::engineName(engine);
        EXPECT_EQ(m.eq.curTick(), ref.eq.curTick())
            << cpu::engineName(engine);
        EXPECT_EQ(m.seq.instsRetired(), ref.seq.instsRetired());
        EXPECT_EQ(m.seq.busyCycles(), ref.seq.busyCycles());
        // The store really dropped a decoded page (the linked target's).
        EXPECT_GE(m.as.decodeCache().invalidations(), 1u)
            << cpu::engineName(engine);
        EXPECT_GT(m.seq.decodeCacheHits(), 0u) << cpu::engineName(engine);
    }
}

TEST(SuperblockChain, Cr3SwitchMidChainDropsLinkedBlocks)
{
    // Run a hot loop in space A to a fixed tick, then model a CR3
    // switch to space B holding same-layout code with a different
    // immediate at the same VAs, and let execution continue mid-loop.
    // Any block (or block-exit link) from A surviving the switch would
    // keep folding A's immediate.
    std::string srcA = chainLoopSrc(5, 4000);
    std::string srcB = chainLoopSrc(9, 4000);

    Tick refTicks = 0;
    Word refR4 = 0;
    bool first = true;
    for (cpu::Engine engine :
         {cpu::Engine::Reference, cpu::Engine::Cache,
          cpu::Engine::Superblock}) {
        Machine m(srcA, engine);
        mem::AddressSpace other("q", m.pmem);
        isa::Program progB = isa::assemble(srcB, 0x40'0000);
        other.defineRegion(progB.base, progB.byteSize() + 64, false,
                           "code", progB.bytes());

        m.start();
        m.eq.run(3000); // chain is hot, loop not yet done
        m.env.as = &other;
        m.seq.mmu().setAddressSpace(&other); // CR3 write mid-chain
        m.eq.run();

        EXPECT_EQ(m.reg(1), 4000u) << cpu::engineName(engine);
        if (first) {
            refTicks = m.eq.curTick();
            refR4 = m.reg(4);
            first = false;
            // The switch landed mid-loop: r4 mixes both immediates.
            EXPECT_NE(refR4, Word{5} * 4000) << "switched too late";
            EXPECT_NE(refR4, Word{9} * 4000) << "switched too early";
        } else {
            EXPECT_EQ(m.eq.curTick(), refTicks)
                << cpu::engineName(engine);
            EXPECT_EQ(m.reg(4), refR4) << cpu::engineName(engine);
        }
    }
}

TEST(SuperblockChain, SerializationPurgeMidChain)
{
    // MISP serialization purge while the chain is hot: at a fixed tick
    // a Ring-0 episode rewrites the loop body's immediate behind the
    // sequencer, then the serialization engine flushes the TLB and
    // drops the decoded block before resuming. All engines must resync
    // identically mid-loop.
    std::string src = chainLoopSrc(5, 4000);

    Tick refTicks = 0;
    Word refR4 = 0;
    bool first = true;
    for (cpu::Engine engine :
         {cpu::Engine::Reference, cpu::Engine::Cache,
          cpu::Engine::Superblock}) {
        Machine m(src, engine);
        m.start();
        m.eq.run(3000);
        m.as.pokeWord(m.prog.symbol("loop") + 8, 9, 8);
        m.seq.mmu().tlb().flushAll();
        m.seq.invalidateDecodedBlock();
        m.eq.run();

        EXPECT_EQ(m.reg(1), 4000u) << cpu::engineName(engine);
        if (first) {
            refTicks = m.eq.curTick();
            refR4 = m.reg(4);
            first = false;
            EXPECT_NE(refR4, Word{5} * 4000) << "patched too late";
            EXPECT_NE(refR4, Word{9} * 4000) << "patched too early";
        } else {
            EXPECT_EQ(m.eq.curTick(), refTicks)
                << cpu::engineName(engine);
            EXPECT_EQ(m.reg(4), refR4) << cpu::engineName(engine);
        }
    }
}

TEST(SuperblockChain, CrossSpaceReplayWindowsNeverSurviveSwitch)
{
    // Regression for the Mmu one-entry last-translation caches vs.
    // block-exit linking: after a CR3 switch, neither the fetch-side
    // nor the data-side replay window (which holds a raw frame byte
    // pointer) may serve accesses out of the old space's frames, and no
    // block-exit link may reach the old space's blocks (decoded pages
    // and links are per-space by construction). A hot load loop reads
    // the same VA before and after the switch; the two spaces back
    // that VA with different data.
    const char *src = R"(
        main:
            movi r1, 0
            movi r5, 0x100000
            movi r6, 5
            st8 [r5+0], r6
        loop:
            ld8 r3, [r5+0]
            add r4, r4, r3
            addi r1, r1, 1
            cmpi r1, 4000
            jcc.lt loop
            halt
    )";

    Tick refTicks = 0;
    Word refR4 = 0;
    bool first = true;
    for (cpu::Engine engine :
         {cpu::Engine::Reference, cpu::Engine::Cache,
          cpu::Engine::Superblock}) {
        Machine m(src, engine);
        // Space B: identical code at the same VAs, but the data page at
        // 0x100000 holds 9 where space A's run stored 5.
        mem::AddressSpace other("q", m.pmem);
        isa::Program progB = isa::assemble(src, 0x40'0000);
        other.defineRegion(progB.base, progB.byteSize() + 64, false,
                           "code", progB.bytes());
        std::vector<std::uint8_t> data(64, 0);
        data[0] = 9;
        other.defineRegion(0x100000, mem::kPageSize, true, "data", data);

        m.start();
        m.eq.run(3000); // load loop hot: replay windows primed
        m.env.as = &other;
        m.seq.mmu().setAddressSpace(&other); // CR3 write mid-loop
        m.eq.run();

        EXPECT_EQ(m.reg(1), 4000u) << cpu::engineName(engine);
        if (first) {
            refTicks = m.eq.curTick();
            refR4 = m.reg(4);
            first = false;
            // The switch landed mid-loop and the loads really moved to
            // B's frame: r4 mixes 5s (space A) and 9s (space B).
            EXPECT_NE(refR4, Word{5} * 4000) << "switched too late";
            EXPECT_NE(refR4, Word{9} * 4000) << "switched too early";
        } else {
            EXPECT_EQ(m.eq.curTick(), refTicks)
                << cpu::engineName(engine);
            EXPECT_EQ(m.reg(4), refR4) << cpu::engineName(engine);
        }
    }
}

// ---------------------------------------------------------------------
// DecodeCache unit behavior
// ---------------------------------------------------------------------

TEST(DecodeCacheUnit, DecodeFindInvalidateCycle)
{
    mem::PhysicalMemory pmem(16);
    cpu::DecodeCache dc(pmem);

    std::uint64_t frame = pmem.allocFrame();
    PAddr pa = frame << mem::kPageShift;
    auto bytes = isa::encode({isa::Opcode::MovI, 3, 0, 0, 0, 42});
    pmem.writeBytes(pa, bytes.data(), bytes.size());

    const std::uint64_t vpn = 0x400;
    EXPECT_EQ(dc.find(vpn), nullptr);

    cpu::DecodedPage *page = dc.decodePage(vpn, pa);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(dc.find(vpn), page);
    EXPECT_TRUE(page->slots[0].valid);
    EXPECT_EQ(page->slots[0].inst.op, isa::Opcode::MovI);
    EXPECT_EQ(page->slots[0].inst.imm, 42u);
    EXPECT_EQ(page->slots[0].lat, isa::baseLatency(isa::Opcode::MovI));
    EXPECT_EQ(dc.residentPages(), 1u);

    std::uint64_t v0 = page->version;
    dc.invalidateVpn(vpn);
    EXPECT_EQ(dc.find(vpn), nullptr);
    EXPECT_GT(page->version, v0); // stale references die by version
    EXPECT_EQ(dc.invalidations(), 1u);
    EXPECT_EQ(dc.residentPages(), 0u);

    // Redecode reuses the allocation and bumps the version again.
    cpu::DecodedPage *again = dc.decodePage(vpn, pa);
    EXPECT_EQ(again, page);
    EXPECT_GT(page->version, v0 + 1);
}

TEST(DecodeCacheUnit, NoteWriteOnlyTouchesDecodedPages)
{
    mem::PhysicalMemory pmem(16);
    cpu::DecodeCache dc(pmem);
    std::uint64_t frame = pmem.allocFrame();
    PAddr pa = frame << mem::kPageShift;

    const std::uint64_t vpn = 0x400;
    dc.decodePage(vpn, pa);

    // Store to an undecoded page: no invalidation.
    dc.noteWrite((vpn + 1) << mem::kPageShift);
    EXPECT_EQ(dc.invalidations(), 0u);
    EXPECT_NE(dc.find(vpn), nullptr);

    // Store to the decoded page: dropped.
    dc.noteWrite((vpn << mem::kPageShift) + 0x123);
    EXPECT_EQ(dc.invalidations(), 1u);
    EXPECT_EQ(dc.find(vpn), nullptr);

    // Second store to the now-undecoded page: no double count.
    dc.noteWrite((vpn << mem::kPageShift) + 0x456);
    EXPECT_EQ(dc.invalidations(), 1u);
}

TEST(DecodeCacheUnit, InvalidDecodesFaultAsSlots)
{
    mem::PhysicalMemory pmem(16);
    cpu::DecodeCache dc(pmem);
    std::uint64_t frame = pmem.allocFrame();
    PAddr pa = frame << mem::kPageShift;

    std::uint8_t junk[isa::kInstBytes] = {0xFF}; // out-of-range opcode
    pmem.writeBytes(pa, junk, sizeof(junk));

    cpu::DecodedPage *page = dc.decodePage(0x400, pa);
    EXPECT_FALSE(page->slots[0].valid); // becomes InvalidOpcode on fetch
    // Zero-filled rest of the page decodes as NOPs.
    EXPECT_TRUE(page->slots[1].valid);
    EXPECT_EQ(page->slots[1].inst.op, isa::Opcode::Nop);
}

// ---------------------------------------------------------------------
// Engine on/off equivalence on interpreter-bound kernels
// ---------------------------------------------------------------------

TEST(DecodeCacheEquivalence, LoopKernelBitIdentical)
{
    const char *src = R"(
        main:
            movi r1, 0
        loop:
            addi r1, r1, 1
            muli r2, r1, 3
            cmpi r1, 20000
            jcc.lt loop
            halt
    )";
    Machine off(src, cpu::Engine::Reference);
    off.run();
    EXPECT_EQ(off.seq.decodeCacheHits(), 0u);
    for (cpu::Engine engine :
         {cpu::Engine::Cache, cpu::Engine::Superblock}) {
        Machine on(src, engine);
        on.run();
        EXPECT_EQ(on.eq.curTick(), off.eq.curTick())
            << cpu::engineName(engine);
        EXPECT_EQ(on.seq.instsRetired(), off.seq.instsRetired());
        EXPECT_EQ(on.seq.busyCycles(), off.seq.busyCycles());
        EXPECT_EQ(on.seq.mmu().tlb().hits(),
                  off.seq.mmu().tlb().hits());
        EXPECT_EQ(on.seq.mmu().tlb().misses(),
                  off.seq.mmu().tlb().misses());
        EXPECT_EQ(on.seq.mmu().pageWalks(), off.seq.mmu().pageWalks());
        EXPECT_EQ(on.reg(1), off.reg(1));
        // The engine actually engaged.
        EXPECT_GT(on.seq.decodeCacheHits(), 0u)
            << cpu::engineName(engine);
    }
}
