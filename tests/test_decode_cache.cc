/**
 * @file
 * Decode-cache coherence tests: the predecoded-block execution engine
 * must never execute stale instructions. Covered invalidation paths:
 *
 *  - self-modifying code: a guest store to a decoded page forces a
 *    re-decode before the next fetch from it;
 *  - host-side pokes (loaders/runtimes) obey the same rule;
 *  - CR3 / address-space switch: no block from another space is reused;
 *  - MISP serialization purge (TLB flush + decoded-block drop) resyncs
 *    with memory the modeled kernel changed;
 *  - and the engine is a pure host-side optimization: simulated cycles
 *    and retired counts are bit-identical with the engine on and off.
 */

#include <gtest/gtest.h>

#include "cpu/decode_cache.hh"
#include "cpu/sequencer.hh"
#include "harness/bare_machine.hh"
#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "mem/address_space.hh"
#include "workloads/workload.hh"

using namespace misp;

namespace {

/** One-sequencer machine with a writable code region (SMC tests). */
struct Machine : harness::BareMachine {
    Machine(const std::string &src, bool decodeCache)
        : harness::BareMachine(src, decodeCache, /*writableCode=*/true)
    {}
};

// The guest overwrites the immediate field of a later instruction
// (bytes 8..15 of the 16-byte bundle), then executes it.
const char *kSmcSrc = R"(
    main:
        movi r5, target
        addi r5, r5, 8
        movi r6, 222
        st8 [r5+0], r6
    target:
        movi r0, 111
        halt
)";

} // namespace

TEST(DecodeCacheCoherence, SelfModifyingStoreForcesRedecode)
{
    Machine m(kSmcSrc, /*decodeCache=*/true);
    m.run();
    // Stale predecode would execute movi r0, 111.
    EXPECT_EQ(m.reg(0), 222u);
    EXPECT_GE(m.as.decodeCache().invalidations(), 1u);
    EXPECT_GE(m.as.decodeCache().pagesDecoded(), 2u); // initial + redecode
}

TEST(DecodeCacheCoherence, SmcMatchesReferencePathBitExactly)
{
    Machine on(kSmcSrc, true);
    Machine off(kSmcSrc, false);
    on.run();
    off.run();
    EXPECT_EQ(on.reg(0), 222u);
    EXPECT_EQ(off.reg(0), 222u);
    EXPECT_EQ(on.eq.curTick(), off.eq.curTick());
    EXPECT_EQ(on.seq.instsRetired(), off.seq.instsRetired());
    EXPECT_EQ(on.seq.busyCycles(), off.seq.busyCycles());
}

TEST(DecodeCacheCoherence, HostPokeInvalidatesDecodedPage)
{
    const char *src = R"(
        main:
            movi r0, 1
            halt
    )";
    Machine m(src, true);
    m.run();
    EXPECT_EQ(m.reg(0), 1u);

    // Host-side rewrite of the first instruction's immediate (the path
    // loaders and runtimes use), then re-run from the same address.
    Word newImm = 7;
    m.as.pokeWord(m.prog.symbol("main") + 8, newImm, 8);
    EXPECT_GE(m.as.decodeCache().invalidations(), 1u);
    m.run();
    EXPECT_EQ(m.reg(0), 7u);
}

TEST(DecodeCacheCoherence, AddressSpaceSwitchNeverReusesBlocks)
{
    // Two address spaces with different code at the same VA; a CR3
    // write (setAddressSpace) between runs must never leak blocks.
    const char *srcA = "main:\n    movi r0, 1\n    halt\n";
    const char *srcB = "main:\n    movi r0, 2\n    halt\n";

    Machine m(srcA, true);
    mem::AddressSpace other("q", m.pmem);
    isa::Program progB = isa::assemble(srcB, 0x40'0000);
    other.defineRegion(progB.base, progB.byteSize() + 64, false, "code",
                       progB.bytes());

    m.run();
    EXPECT_EQ(m.reg(0), 1u);

    m.env.as = &other;
    m.seq.mmu().setAddressSpace(&other); // CR3 write: TLB purge
    m.seq.startAt(progB.symbol("main"), 0);
    m.eq.run();
    EXPECT_EQ(m.reg(0), 2u);

    // And back: space A's decoded page may be reused (it is still
    // coherent), but must again produce A's code.
    m.env.as = &m.as;
    m.seq.mmu().setAddressSpace(&m.as);
    m.seq.startAt(m.prog.symbol("main"), 0);
    m.eq.run();
    EXPECT_EQ(m.reg(0), 1u);
}

TEST(DecodeCacheCoherence, SerializationPurgeResyncsWithMemory)
{
    // Model the MISP serialization engine's purge (misp_processor's
    // SpeculativeMonitor path): the kernel changed guest memory during
    // a Ring-0 episode; the sequencer's TLB is flushed and its decoded
    // block dropped before it resumes.
    const char *src = R"(
        main:
            movi r0, 1
            halt
    )";
    Machine m(src, true);
    m.run();
    EXPECT_EQ(m.reg(0), 1u);

    // Ring-0 episode rewrites the code page behind the sequencer...
    std::array<std::uint8_t, isa::kInstBytes> bytes =
        isa::encode({isa::Opcode::MovI, 0, 0, 0, 0, 99});
    m.as.poke(m.prog.symbol("main"), bytes.data(), bytes.size());
    // ...and the serialization engine purges before resuming.
    m.seq.mmu().tlb().flushAll();
    m.seq.invalidateDecodedBlock();

    m.run();
    EXPECT_EQ(m.reg(0), 99u);
}

TEST(DecodeCacheCoherence, FullSystemIdenticalUnderSpeculativeMonitor)
{
    // End-to-end: the serialization policy that keeps AMSs running and
    // purges on CR3 change, with the engine on vs. off, must agree.
    const wl::WorkloadInfo *target = nullptr;
    for (const wl::WorkloadInfo &info : wl::allWorkloads()) {
        if (info.name == "dense_mvm")
            target = &info;
    }
    ASSERT_NE(target, nullptr);

    auto runOnce = [&](bool decodeCache) {
        wl::WorkloadParams params;
        params.workers = 7;
        wl::Workload w = target->build(params);
        arch::SystemConfig sys = arch::SystemConfig::uniprocessor(7);
        sys.misp.serialization =
            arch::SerializationPolicy::SpeculativeMonitor;
        sys.misp.decodeCache = decodeCache;
        harness::Experiment exp(sys, rt::Backend::Shred);
        harness::LoadedProcess proc = exp.load(w.app);
        Tick t = exp.runToCompletion(proc.process).ticks;
        EXPECT_TRUE(!w.validate ||
                    w.validate(proc.process->addressSpace()));
        return t;
    };

    EXPECT_EQ(runOnce(true), runOnce(false));
}

// ---------------------------------------------------------------------
// DecodeCache unit behavior
// ---------------------------------------------------------------------

TEST(DecodeCacheUnit, DecodeFindInvalidateCycle)
{
    mem::PhysicalMemory pmem(16);
    cpu::DecodeCache dc(pmem);

    std::uint64_t frame = pmem.allocFrame();
    PAddr pa = frame << mem::kPageShift;
    auto bytes = isa::encode({isa::Opcode::MovI, 3, 0, 0, 0, 42});
    pmem.writeBytes(pa, bytes.data(), bytes.size());

    const std::uint64_t vpn = 0x400;
    EXPECT_EQ(dc.find(vpn), nullptr);

    cpu::DecodedPage *page = dc.decodePage(vpn, pa);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(dc.find(vpn), page);
    EXPECT_TRUE(page->slots[0].valid);
    EXPECT_EQ(page->slots[0].inst.op, isa::Opcode::MovI);
    EXPECT_EQ(page->slots[0].inst.imm, 42u);
    EXPECT_EQ(page->slots[0].lat, isa::baseLatency(isa::Opcode::MovI));
    EXPECT_EQ(dc.residentPages(), 1u);

    std::uint64_t v0 = page->version;
    dc.invalidateVpn(vpn);
    EXPECT_EQ(dc.find(vpn), nullptr);
    EXPECT_GT(page->version, v0); // stale references die by version
    EXPECT_EQ(dc.invalidations(), 1u);
    EXPECT_EQ(dc.residentPages(), 0u);

    // Redecode reuses the allocation and bumps the version again.
    cpu::DecodedPage *again = dc.decodePage(vpn, pa);
    EXPECT_EQ(again, page);
    EXPECT_GT(page->version, v0 + 1);
}

TEST(DecodeCacheUnit, NoteWriteOnlyTouchesDecodedPages)
{
    mem::PhysicalMemory pmem(16);
    cpu::DecodeCache dc(pmem);
    std::uint64_t frame = pmem.allocFrame();
    PAddr pa = frame << mem::kPageShift;

    const std::uint64_t vpn = 0x400;
    dc.decodePage(vpn, pa);

    // Store to an undecoded page: no invalidation.
    dc.noteWrite((vpn + 1) << mem::kPageShift);
    EXPECT_EQ(dc.invalidations(), 0u);
    EXPECT_NE(dc.find(vpn), nullptr);

    // Store to the decoded page: dropped.
    dc.noteWrite((vpn << mem::kPageShift) + 0x123);
    EXPECT_EQ(dc.invalidations(), 1u);
    EXPECT_EQ(dc.find(vpn), nullptr);

    // Second store to the now-undecoded page: no double count.
    dc.noteWrite((vpn << mem::kPageShift) + 0x456);
    EXPECT_EQ(dc.invalidations(), 1u);
}

TEST(DecodeCacheUnit, InvalidDecodesFaultAsSlots)
{
    mem::PhysicalMemory pmem(16);
    cpu::DecodeCache dc(pmem);
    std::uint64_t frame = pmem.allocFrame();
    PAddr pa = frame << mem::kPageShift;

    std::uint8_t junk[isa::kInstBytes] = {0xFF}; // out-of-range opcode
    pmem.writeBytes(pa, junk, sizeof(junk));

    cpu::DecodedPage *page = dc.decodePage(0x400, pa);
    EXPECT_FALSE(page->slots[0].valid); // becomes InvalidOpcode on fetch
    // Zero-filled rest of the page decodes as NOPs.
    EXPECT_TRUE(page->slots[1].valid);
    EXPECT_EQ(page->slots[1].inst.op, isa::Opcode::Nop);
}

// ---------------------------------------------------------------------
// Engine on/off equivalence on interpreter-bound kernels
// ---------------------------------------------------------------------

TEST(DecodeCacheEquivalence, LoopKernelBitIdentical)
{
    const char *src = R"(
        main:
            movi r1, 0
        loop:
            addi r1, r1, 1
            muli r2, r1, 3
            cmpi r1, 20000
            jcc.lt loop
            halt
    )";
    Machine on(src, true);
    Machine off(src, false);
    on.run();
    off.run();
    EXPECT_EQ(on.eq.curTick(), off.eq.curTick());
    EXPECT_EQ(on.seq.instsRetired(), off.seq.instsRetired());
    EXPECT_EQ(on.seq.busyCycles(), off.seq.busyCycles());
    EXPECT_EQ(on.seq.mmu().tlb().hits(), off.seq.mmu().tlb().hits());
    EXPECT_EQ(on.seq.mmu().tlb().misses(),
              off.seq.mmu().tlb().misses());
    EXPECT_EQ(on.seq.mmu().pageWalks(), off.seq.mmu().pageWalks());
    EXPECT_EQ(on.reg(1), off.reg(1));
    // The engine actually engaged.
    EXPECT_GT(on.seq.decodeCacheHits(), 0u);
    EXPECT_EQ(off.seq.decodeCacheHits(), 0u);
}
