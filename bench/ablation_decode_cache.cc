/**
 * @file
 * Ablation: the predecoded-block execution engine (decode cache + TLB
 * fetch fast path) on vs. off.
 *
 * Runs interpreter-bound kernels — straight-line, tight loop, and a
 * memory-touching loop — plus one full-system workload, each with the
 * engine enabled and disabled, and reports:
 *
 *  - host throughput (retired guest instructions per host second) for
 *    both settings and the speedup ratio, and
 *  - a model check: simulated cycles, retired counts, and final ticks
 *    must be bit-identical across the two settings (the engine is a
 *    host-side optimization only). Any divergence fails the run.
 *
 * Results are also written to BENCH_decode_cache.json so CI keeps a
 * perf trajectory across PRs.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/bare_machine.hh"
#include "isa/assembler.hh"

using namespace misp;
using namespace misp::bench;

namespace {

struct KernelResult {
    std::string name;
    Tick simCyclesOn = 0, simCyclesOff = 0;
    std::uint64_t retiredOn = 0, retiredOff = 0;
    double mipsOn = 0.0, mipsOff = 0.0;
    double speedup = 0.0;
    bool identical = false;
};

/** Multi-page straight-line code: @p bodyInsts ALU ops in sequence,
 *  re-run @p reps times by one outer backward branch. */
std::string
straightLineSrc(unsigned bodyInsts, unsigned reps)
{
    std::string src = "main:\n    movi r1, 0\nouter:\n";
    for (unsigned i = 0; i < bodyInsts; ++i) {
        switch (i % 4) {
          case 0: src += "    addi r2, r2, 3\n"; break;
          case 1: src += "    xori r3, r2, 0x5a\n"; break;
          case 2: src += "    muli r4, r3, 7\n"; break;
          case 3: src += "    subi r5, r4, 1\n"; break;
        }
    }
    src += "    addi r1, r1, 1\n    cmpi r1, " + std::to_string(reps) +
           "\n    jcc.lt outer\n    halt\n";
    return src;
}

std::string
tightLoopSrc(unsigned iters)
{
    return R"(
        main:
            movi r1, 0
        loop:
            addi r1, r1, 1
            muli r2, r1, 3
            xori r3, r2, 0x55
            cmpi r1, )" +
           std::to_string(iters) + R"(
            jcc.lt loop
            halt
    )";
}

std::string
memLoopSrc(unsigned iters)
{
    // Loads + stores so the data-side TLB and the SMC write probe are
    // both exercised (stores land on data pages: O(1) bitmap test).
    return R"(
        main:
            movi r1, 0
            movi r4, 0x100000
        loop:
            ld8 r2, [r4+0]
            addi r2, r2, 1
            st8 [r4+0], r2
            addi r1, r1, 1
            cmpi r1, )" +
           std::to_string(iters) + R"(
            jcc.lt loop
            halt
    )";
}

struct Measured {
    Tick ticks = 0;
    Tick busyCycles = 0;
    std::uint64_t retired = 0;
    double seconds = 0.0;
};

Measured
runKernel(const std::string &src, bool decodeCache)
{
    harness::BareMachine m(src, decodeCache);
    auto t0 = std::chrono::steady_clock::now();
    m.run();
    auto t1 = std::chrono::steady_clock::now();
    Measured out;
    out.ticks = m.eq.curTick();
    out.busyCycles = m.seq.busyCycles();
    out.retired = m.seq.instsRetired();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

KernelResult
compareKernel(const std::string &name, const std::string &src,
              unsigned reps)
{
    KernelResult r;
    r.name = name;
    // Warm-up once per setting, then take the best host time of reps.
    double bestOn = 1e30, bestOff = 1e30;
    Measured on, off;
    for (unsigned i = 0; i < reps; ++i) {
        Measured m = runKernel(src, true);
        on = m;
        bestOn = std::min(bestOn, m.seconds);
    }
    for (unsigned i = 0; i < reps; ++i) {
        Measured m = runKernel(src, false);
        off = m;
        bestOff = std::min(bestOff, m.seconds);
    }
    r.simCyclesOn = on.busyCycles;
    r.simCyclesOff = off.busyCycles;
    r.retiredOn = on.retired;
    r.retiredOff = off.retired;
    r.identical = on.ticks == off.ticks &&
                  on.busyCycles == off.busyCycles &&
                  on.retired == off.retired;
    r.mipsOn = on.retired / bestOn / 1e6;
    r.mipsOff = off.retired / bestOff / 1e6;
    r.speedup = r.mipsOn / r.mipsOff;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const bool quick = quickMode(argc, argv);
    const unsigned scale = quick ? 1 : 4;
    const unsigned reps = quick ? 2 : 3;

    printHeader("Ablation: predecoded-block execution engine "
                "(decode cache + TLB fetch fast path)");

    std::vector<KernelResult> results;
    results.push_back(compareKernel(
        "straight_line", straightLineSrc(600, 200 * scale), reps));
    results.push_back(
        compareKernel("tight_loop", tightLoopSrc(50'000 * scale), reps));
    results.push_back(
        compareKernel("mem_loop", memLoopSrc(30'000 * scale), reps));

    // Full-system check: one Figure-4 workload end to end, both ways —
    // the paired on/off machines live in the spec, whose [report]
    // asserts also pin the bit-identity contract.
    driver::Scenario sc;
    std::vector<driver::PointResult> grid;
    driver::RunnerOptions opts;
    // Deliberately NOT honoring --no-decode-cache here: the spec's
    // machine pair pins decode_cache on/off per leg, and the global
    // override would silently turn the A/B into off-vs-off.
    if (!driver::runScenarioByName("ablation_decode_cache.scn", argv[0],
                                   quick, opts, "ablation_decode_cache",
                                   &sc, &grid))
        return 1;
    bool fullIdentical = false;
    {
        const driver::PointResult *rOn =
            driver::findResult(grid, "dc_on", "dense_mvm", 0);
        const driver::PointResult *rOff =
            driver::findResult(grid, "dc_off", "dense_mvm", 0);
        MISP_ASSERT(rOn && rOff);
        fullIdentical = rOn->run.ticks == rOff->run.ticks &&
                        rOn->run.valid && rOff->run.valid &&
                        rOn->run.instsRetired == rOff->run.instsRetired;
        std::printf("\nfull-system dense_mvm: on=%llu off=%llu ticks "
                    "(%s), host %.2f vs %.2f MIPS\n",
                    (unsigned long long)rOn->run.ticks,
                    (unsigned long long)rOff->run.ticks,
                    fullIdentical ? "identical" : "DIVERGED",
                    rOn->run.hostMips, rOff->run.hostMips);
    }

    std::printf("\n%-14s %12s %12s %9s %9s %8s  %s\n", "kernel",
                "sim_cyc_on", "sim_cyc_off", "mips_on", "mips_off",
                "speedup", "model");
    bool allIdentical = fullIdentical;
    double minSpeedup = 1e30;
    for (const KernelResult &r : results) {
        std::printf("%-14s %12llu %12llu %9.2f %9.2f %7.2fx  %s\n",
                    r.name.c_str(), (unsigned long long)r.simCyclesOn,
                    (unsigned long long)r.simCyclesOff, r.mipsOn,
                    r.mipsOff, r.speedup,
                    r.identical ? "identical" : "DIVERGED");
        allIdentical = allIdentical && r.identical;
        minSpeedup = std::min(minSpeedup, r.speedup);
    }

    // Machine-readable trajectory for CI.
    FILE *json = std::fopen("BENCH_decode_cache.json", "w");
    if (json) {
        std::fprintf(json, "{\n  \"kernels\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const KernelResult &r = results[i];
            std::fprintf(
                json,
                "    {\"name\": \"%s\", \"mips_on\": %.2f, "
                "\"mips_off\": %.2f, \"speedup\": %.3f, "
                "\"sim_cycles_on\": %llu, \"sim_cycles_off\": %llu, "
                "\"retired\": %llu, \"identical\": %s}%s\n",
                r.name.c_str(), r.mipsOn, r.mipsOff, r.speedup,
                (unsigned long long)r.simCyclesOn,
                (unsigned long long)r.simCyclesOff,
                (unsigned long long)r.retiredOn,
                r.identical ? "true" : "false",
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n  \"min_speedup\": %.3f,\n"
                     "  \"model_identical\": %s\n}\n",
                     minSpeedup, allIdentical ? "true" : "false");
        std::fclose(json);
        std::printf("\nwrote BENCH_decode_cache.json (min speedup "
                    "%.2fx)\n",
                    minSpeedup);
    }

    if (!allIdentical) {
        std::printf("FAIL: simulated results diverged between decode "
                    "cache on and off\n");
        return 1;
    }
    return 0;
}
