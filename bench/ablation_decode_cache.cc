/**
 * @file
 * Ablation: the host execution-engine trajectory — reference
 * per-instruction decode, predecoded-block cache, and chained
 * superblocks.
 *
 * Runs interpreter-bound kernels — straight-line, tight loop, and a
 * memory-touching loop — plus one full-system workload, each under all
 * three engines, and reports:
 *
 *  - host throughput (retired guest instructions per host second) per
 *    engine and the cache/ref and superblock/cache speedup ratios, and
 *  - a model check: simulated cycles, retired counts, and final ticks
 *    must be bit-identical across the three engines (an engine is a
 *    host-side optimization only). Any divergence fails the run.
 *
 * Results are also written to BENCH_decode_cache.json so CI keeps a
 * perf trajectory across PRs.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/bare_machine.hh"
#include "isa/assembler.hh"

using namespace misp;
using namespace misp::bench;

namespace {

const cpu::Engine kEngines[3] = {cpu::Engine::Reference,
                                 cpu::Engine::Cache,
                                 cpu::Engine::Superblock};

struct KernelResult {
    std::string name;
    Tick simCycles[3] = {0, 0, 0};
    std::uint64_t retired[3] = {0, 0, 0};
    double mips[3] = {0.0, 0.0, 0.0};
    double cacheSpeedup = 0.0; ///< cache vs ref
    double sbSpeedup = 0.0;    ///< superblock vs cache
    bool identical = false;
};

/** Multi-page straight-line code: @p bodyInsts ALU ops in sequence,
 *  re-run @p reps times by one outer backward branch. */
std::string
straightLineSrc(unsigned bodyInsts, unsigned reps)
{
    std::string src = "main:\n    movi r1, 0\nouter:\n";
    for (unsigned i = 0; i < bodyInsts; ++i) {
        switch (i % 4) {
          case 0: src += "    addi r2, r2, 3\n"; break;
          case 1: src += "    xori r3, r2, 0x5a\n"; break;
          case 2: src += "    muli r4, r3, 7\n"; break;
          case 3: src += "    subi r5, r4, 1\n"; break;
        }
    }
    src += "    addi r1, r1, 1\n    cmpi r1, " + std::to_string(reps) +
           "\n    jcc.lt outer\n    halt\n";
    return src;
}

std::string
tightLoopSrc(unsigned iters)
{
    return R"(
        main:
            movi r1, 0
        loop:
            addi r1, r1, 1
            muli r2, r1, 3
            xori r3, r2, 0x55
            cmpi r1, )" +
           std::to_string(iters) + R"(
            jcc.lt loop
            halt
    )";
}

std::string
memLoopSrc(unsigned iters)
{
    // Loads + stores so the data-side TLB and the SMC write probe are
    // both exercised (stores land on data pages: O(1) bitmap test).
    return R"(
        main:
            movi r1, 0
            movi r4, 0x100000
        loop:
            ld8 r2, [r4+0]
            addi r2, r2, 1
            st8 [r4+0], r2
            addi r1, r1, 1
            cmpi r1, )" +
           std::to_string(iters) + R"(
            jcc.lt loop
            halt
    )";
}

struct Measured {
    Tick ticks = 0;
    Tick busyCycles = 0;
    std::uint64_t retired = 0;
    double seconds = 0.0;
};

Measured
runKernel(const std::string &src, cpu::Engine engine)
{
    harness::BareMachine m(src, engine);
    auto t0 = std::chrono::steady_clock::now();
    m.run();
    auto t1 = std::chrono::steady_clock::now();
    Measured out;
    out.ticks = m.eq.curTick();
    out.busyCycles = m.seq.busyCycles();
    out.retired = m.seq.instsRetired();
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    return out;
}

KernelResult
compareKernel(const std::string &name, const std::string &src,
              unsigned reps)
{
    KernelResult r;
    r.name = name;
    // Interleave the engines within each rep and keep the best host
    // time per engine: slow drift in background load then hits every
    // engine alike instead of biasing whichever leg ran last.
    Measured last[3];
    double best[3] = {1e30, 1e30, 1e30};
    for (unsigned i = 0; i < reps; ++i) {
        for (unsigned e = 0; e < 3; ++e) {
            Measured m = runKernel(src, kEngines[e]);
            last[e] = m;
            best[e] = std::min(best[e], m.seconds);
        }
    }
    for (unsigned e = 0; e < 3; ++e) {
        r.simCycles[e] = last[e].busyCycles;
        r.retired[e] = last[e].retired;
        r.mips[e] = last[e].retired / best[e] / 1e6;
    }
    r.identical = last[0].ticks == last[1].ticks &&
                  last[0].ticks == last[2].ticks &&
                  last[0].busyCycles == last[1].busyCycles &&
                  last[0].busyCycles == last[2].busyCycles &&
                  last[0].retired == last[1].retired &&
                  last[0].retired == last[2].retired;
    r.cacheSpeedup = r.mips[1] / r.mips[0];
    r.sbSpeedup = r.mips[2] / r.mips[1];
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const bool quick = quickMode(argc, argv);
    const unsigned scale = quick ? 1 : 4;
    const unsigned reps = quick ? 2 : 3;

    printHeader("Ablation: host execution engines "
                "(ref -> decode cache -> chained superblocks)");

    std::vector<KernelResult> results;
    results.push_back(compareKernel(
        "straight_line", straightLineSrc(600, 200 * scale), reps));
    results.push_back(
        compareKernel("tight_loop", tightLoopSrc(50'000 * scale), reps));
    results.push_back(
        compareKernel("mem_loop", memLoopSrc(30'000 * scale), reps));

    // Full-system check: one Figure-4 workload end to end under every
    // engine — the machine triple lives in the spec, whose [report]
    // asserts also pin the bit-identity contract.
    driver::Scenario sc;
    std::vector<driver::PointResult> grid;
    driver::RunnerOptions opts;
    // Deliberately NOT honoring --engine/--no-decode-cache here: the
    // spec's machine triple pins one engine per leg, and the global
    // override would silently collapse the A/B/C onto one engine.
    if (!driver::runScenarioByName("ablation_decode_cache.scn", argv[0],
                                   quick, opts, "ablation_decode_cache",
                                   &sc, &grid))
        return 1;
    bool fullIdentical = false;
    {
        const driver::PointResult *rOn =
            driver::findResult(grid, "dc_on", "dense_mvm", 0);
        const driver::PointResult *rOff =
            driver::findResult(grid, "dc_off", "dense_mvm", 0);
        const driver::PointResult *rSb =
            driver::findResult(grid, "dc_sb", "dense_mvm", 0);
        MISP_ASSERT(rOn && rOff && rSb);
        fullIdentical = rOn->run.ticks == rOff->run.ticks &&
                        rSb->run.ticks == rOff->run.ticks &&
                        rOn->run.valid && rOff->run.valid &&
                        rSb->run.valid &&
                        rOn->run.instsRetired == rOff->run.instsRetired &&
                        rSb->run.instsRetired == rOff->run.instsRetired;
        std::printf("\nfull-system dense_mvm: ref=%llu cache=%llu "
                    "sb=%llu ticks (%s), host %.2f / %.2f / %.2f MIPS\n",
                    (unsigned long long)rOff->run.ticks,
                    (unsigned long long)rOn->run.ticks,
                    (unsigned long long)rSb->run.ticks,
                    fullIdentical ? "identical" : "DIVERGED",
                    rOff->run.hostMips, rOn->run.hostMips,
                    rSb->run.hostMips);
    }

    std::printf("\n%-14s %12s %9s %9s %9s %9s %9s  %s\n", "kernel",
                "sim_cycles", "mips_ref", "mips_dc", "mips_sb",
                "dc/ref", "sb/dc", "model");
    bool allIdentical = fullIdentical;
    double minSbSpeedup = 1e30;
    for (const KernelResult &r : results) {
        std::printf("%-14s %12llu %9.2f %9.2f %9.2f %8.2fx %8.2fx  %s\n",
                    r.name.c_str(), (unsigned long long)r.simCycles[0],
                    r.mips[0], r.mips[1], r.mips[2], r.cacheSpeedup,
                    r.sbSpeedup,
                    r.identical ? "identical" : "DIVERGED");
        allIdentical = allIdentical && r.identical;
        minSbSpeedup = std::min(minSbSpeedup, r.sbSpeedup);
    }

    // Machine-readable trajectory for CI.
    FILE *json = std::fopen("BENCH_decode_cache.json", "w");
    if (json) {
        std::fprintf(json, "{\n  \"kernels\": [\n");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const KernelResult &r = results[i];
            std::fprintf(
                json,
                "    {\"name\": \"%s\", \"mips_ref\": %.2f, "
                "\"mips_cache\": %.2f, \"mips_superblock\": %.2f, "
                "\"speedup_cache\": %.3f, \"speedup_superblock\": %.3f, "
                "\"sim_cycles\": %llu, \"retired\": %llu, "
                "\"identical\": %s}%s\n",
                r.name.c_str(), r.mips[0], r.mips[1], r.mips[2],
                r.cacheSpeedup, r.sbSpeedup,
                (unsigned long long)r.simCycles[0],
                (unsigned long long)r.retired[0],
                r.identical ? "true" : "false",
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n  \"min_superblock_speedup\": %.3f,\n"
                     "  \"model_identical\": %s\n}\n",
                     minSbSpeedup, allIdentical ? "true" : "false");
        std::fclose(json);
        std::printf("\nwrote BENCH_decode_cache.json (min superblock "
                    "speedup %.2fx over decode cache)\n",
                    minSbSpeedup);
    }

    if (!allIdentical) {
        std::printf("FAIL: simulated results diverged across "
                    "execution engines\n");
        return 1;
    }
    return 0;
}
