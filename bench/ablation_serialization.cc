/**
 * @file
 * Ablation A (paper §2.3) — serialization policy.
 *
 * The paper's simple implementation suspends every AMS whenever the OMS
 * enters Ring 0; it sketches (but does not build) an aggressive
 * alternative where AMSs continue speculatively while hardware monitors
 * the control registers, squashing only if CR3 actually changed.
 *
 * Thin wrapper over the scenario driver: the workload x policy grid
 * lives in scenarios/ablation_serialization.scn and runs through the
 * unified run layer (the same engine `mispsim` uses); this binary only
 * derives the presentation — runtime and total AMS suspension cycles
 * under each policy, quantifying what the extra hardware would buy.
 *
 * `--points` prints the canonical per-run lines, which CI diffs
 * against `mispsim scenarios/ablation_serialization.scn --points`.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    std::vector<driver::PointResult> results;
    int exitCode = 0;
    if (scenarioBenchMain("ablation_serialization.scn",
                          "ablation_serialization", argc, argv, &sc,
                          &results, &exitCode))
        return exitCode;

    printHeader("Ablation A: suspend-all vs speculative control-register "
                "monitoring (§2.3)");
    std::printf("%-18s %14s %14s %10s %16s\n", "application",
                "suspend-all", "speculative", "gain", "susp-cyc(M)");

    const std::vector<std::string> names = sweptWorkloads(results);

    for (const std::string &name : names) {
        const driver::PointResult *base = driver::findResultCoords(
            results, "misp",
            {{"workload.name", name},
             {"machine.serialization", "suspend_all"}});
        const driver::PointResult *spec = driver::findResultCoords(
            results, "misp",
            {{"workload.name", name},
             {"machine.serialization", "speculative_monitor"}});
        if (!base || !spec) {
            std::printf("!! missing grid point for %s\n", name.c_str());
            continue;
        }
        if (!base->run.valid)
            std::printf("!! validation failed for %s\n", name.c_str());
        if (!spec->run.valid)
            std::printf("!! validation failed for %s\n", name.c_str());
        std::printf("%-18s %12.1fM %12.1fM %+9.2f%% %15.1f\n",
                    name.c_str(), base->run.ticks / 1e6,
                    spec->run.ticks / 1e6,
                    (double(base->run.ticks) / double(spec->run.ticks) -
                     1.0) *
                        100.0,
                    base->run.events.suspendedCycles / 1e6);
    }

    std::printf("\nReading: the speculative policy removes all AMS "
                "suspension, but since the\nsuspend-all overhead is "
                "already small (Figure 4/5), the gain is modest —\n"
                "supporting the paper's choice of the simple "
                "implementation.\n");
    return 0;
}
