/**
 * @file
 * Ablation A (paper §2.3) — serialization policy.
 *
 * The paper's simple implementation suspends every AMS whenever the OMS
 * enters Ring 0; it sketches (but does not build) an aggressive
 * alternative where AMSs continue speculatively while hardware monitors
 * the control registers, squashing only if CR3 actually changed.
 *
 * Thin wrapper over the scenario driver: the workload x policy grid
 * lives in scenarios/ablation_serialization.scn and runs through the
 * unified run layer (the same engine `mispsim` uses); this binary only
 * derives the presentation — runtime and total AMS suspension cycles
 * under each policy, quantifying what the extra hardware would buy.
 *
 * `--points` prints the canonical per-run lines, which CI diffs
 * against `mispsim scenarios/ablation_serialization.scn --points`.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    harness::MetricFrame frame;
    int exitCode = 0;
    if (scenarioBenchMain("ablation_serialization.scn",
                          "ablation_serialization", argc, argv, &sc,
                          &frame, &exitCode))
        return exitCode;

    printHeader("Ablation A: suspend-all vs speculative control-register "
                "monitoring (§2.3)");
    std::printf("%-18s %14s %14s %10s %16s\n", "application",
                "suspend-all", "speculative", "gain", "susp-cyc(M)");

    using Frame = harness::MetricFrame;
    for (const std::string &name : frame.workloads()) {
        std::size_t base = frame.findRow(
            "misp", {{"workload.name", name},
                     {"machine.serialization", "suspend_all"}});
        std::size_t spec = frame.findRow(
            "misp", {{"workload.name", name},
                     {"machine.serialization", "speculative_monitor"}});
        if (base == Frame::npos || spec == Frame::npos) {
            std::printf("!! missing grid point for %s\n", name.c_str());
            continue;
        }
        if (frame.at(base, "valid") == 0)
            std::printf("!! validation failed for %s\n", name.c_str());
        if (frame.at(spec, "valid") == 0)
            std::printf("!! validation failed for %s\n", name.c_str());
        std::printf("%-18s %12.1fM %12.1fM %+9.2f%% %15.1f\n",
                    name.c_str(), frame.at(base, "mcycles"),
                    frame.at(spec, "mcycles"),
                    (frame.at(base, "ticks") / frame.at(spec, "ticks") -
                     1.0) *
                        100.0,
                    frame.at(base, "events.suspended_cycles") / 1e6);
    }

    std::printf("\nReading: the speculative policy removes all AMS "
                "suspension, but since the\nsuspend-all overhead is "
                "already small (Figure 4/5), the gain is modest —\n"
                "supporting the paper's choice of the simple "
                "implementation.\n");
    return 0;
}
