/**
 * @file
 * Ablation A (paper §2.3) — serialization policy.
 *
 * The paper's simple implementation suspends every AMS whenever the OMS
 * enters Ring 0; it sketches (but does not build) an aggressive
 * alternative where AMSs continue speculatively while hardware monitors
 * the control registers, squashing only if CR3 actually changed.
 *
 * This ablation quantifies what that extra hardware would buy on our
 * workloads: runtime and total AMS suspension cycles under each policy.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

namespace {

struct PolicyResult {
    Tick ticks;
    double suspended;
};

PolicyResult
runWithPolicy(const wl::WorkloadInfo &info,
              const wl::WorkloadParams &params,
              arch::SerializationPolicy policy)
{
    arch::SystemConfig cfg = mispUni(7);
    cfg.misp.serialization = policy;
    wl::Workload w = info.build(params);
    harness::Experiment exp(cfg, rt::Backend::Shred);
    auto proc = exp.load(w.app);
    PolicyResult out;
    out.ticks = exp.run(proc.process);
    out.suspended = 0;
    arch::MispProcessor &mp = exp.system().processor(0);
    for (unsigned i = 0; i < mp.numAms(); ++i)
        out.suspended += double(mp.amsAt(i).suspendedCycles());
    if (w.validate && !w.validate(proc.process->addressSpace()))
        std::printf("!! validation failed for %s\n", info.name.c_str());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);
    wl::WorkloadParams params = defaultParams(quick);

    printHeader("Ablation A: suspend-all vs speculative control-register "
                "monitoring (§2.3)");
    std::printf("%-18s %14s %14s %10s %16s\n", "application",
                "suspend-all", "speculative", "gain", "susp-cyc(M)");

    std::vector<std::string> apps =
        quick ? std::vector<std::string>{"gauss", "swim"}
              : std::vector<std::string>{"gauss", "kmeans", "swim",
                                         "dense_mvm", "Raytracer"};
    for (const std::string &name : apps) {
        const wl::WorkloadInfo *info = wl::findWorkload(name);
        PolicyResult base = runWithPolicy(
            *info, params, arch::SerializationPolicy::SuspendAll);
        PolicyResult spec = runWithPolicy(
            *info, params,
            arch::SerializationPolicy::SpeculativeMonitor);
        std::printf("%-18s %12.1fM %12.1fM %+9.2f%% %15.1f\n",
                    name.c_str(), base.ticks / 1e6, spec.ticks / 1e6,
                    (double(base.ticks) / double(spec.ticks) - 1.0) *
                        100.0,
                    base.suspended / 1e6);
    }

    std::printf("\nReading: the speculative policy removes all AMS "
                "suspension, but since the\nsuspend-all overhead is "
                "already small (Figure 4/5), the gain is modest —\n"
                "supporting the paper's choice of the simple "
                "implementation.\n");
    return 0;
}
