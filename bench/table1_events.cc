/**
 * @file
 * Table 1 — "Serializing Events".
 *
 * Counts, per application on the MISP uniprocessor (1 OMS + 7 AMS), of
 * every event class that serializes the machine:
 *   OMS: SysCall, PF (page faults), Timer, Interrupt
 *   AMS: SysCall, PF   (each AMS event is a proxy-execution request)
 *
 * Paper observations to reproduce (shape, not magnitude — our inputs
 * are scaled):
 *  - compulsory page faults cause the majority of proxy executions;
 *  - gauss/kmeans/svm_c (and galgel) fault mostly on the *OMS* because
 *    main initializes their working sets serially;
 *  - dense/sparse kernels and swim fault mostly on the *AMSs*;
 *  - art is the only application with AMS syscalls.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);
    wl::WorkloadParams params = defaultParams(quick);

    printHeader("Table 1: Serializing Events (MISP, 1 OMS + 7 AMS)");
    std::printf("%-18s | %8s %8s %8s %9s | %8s %8s\n", "application",
                "SysCall", "PF", "Timer", "Interrupt", "AMS-Sys",
                "AMS-PF");
    std::printf("%-18s | %36s | %17s\n", "", "OMS events", "AMS events");
    std::printf("-------------------+---------------------------------"
                "----+------------------\n");

    for (const wl::WorkloadInfo *info : benchSuite(quick)) {
        RunResult r = runWorkload(mispUni(7), rt::Backend::Shred, *info,
                                  params);
        if (!r.valid)
            std::printf("!! validation failed for %s\n",
                        info->name.c_str());
        std::printf("%-18s | %8llu %8llu %8llu %9llu | %8llu %8llu\n",
                    info->name.c_str(),
                    (unsigned long long)r.omsSyscalls,
                    (unsigned long long)r.omsPageFaults,
                    (unsigned long long)r.timer,
                    (unsigned long long)r.interrupts,
                    (unsigned long long)r.amsSyscalls,
                    (unsigned long long)r.amsPageFaults);
    }

    std::printf("\nShape checks vs the paper:\n");
    std::printf(" - AMS page faults are compulsory (working-set cold "
                "misses) and dominate proxies;\n");
    std::printf(" - serial-init apps (gauss, kmeans, svm_c, galgel) "
                "shift faults to the OMS;\n");
    std::printf(" - only art produces AMS syscalls.\n");
    return 0;
}
