/**
 * @file
 * Table 1 — "Serializing Events".
 *
 * Thin wrapper over the scenario driver: the machine and workload
 * sweep live in scenarios/table1.scn, the runs go through the unified
 * run layer (the same engine `mispsim scenarios/table1.scn` uses), and
 * this binary only renders the paper's raw-count table. `mispsim`
 * renders the [report] events mode instead (the same classes
 * normalized per 10^6 retired instructions).
 *
 * `--points` prints the canonical per-run lines, which CI diffs
 * against `mispsim scenarios/table1.scn --points`.
 *
 * Paper observations to reproduce (shape, not magnitude — our inputs
 * are scaled):
 *  - compulsory page faults cause the majority of proxy executions;
 *  - gauss/kmeans/svm_c (and galgel) fault mostly on the *OMS* because
 *    main initializes their working sets serially;
 *  - dense/sparse kernels and swim fault mostly on the *AMSs*;
 *  - art is the only application with AMS syscalls.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    harness::MetricFrame frame;
    int exitCode = 0;
    if (scenarioBenchMain("table1.scn", "table1_events", argc, argv, &sc,
                          &frame, &exitCode))
        return exitCode;

    printHeader("Table 1: Serializing Events (MISP, 1 OMS + 7 AMS)");
    std::printf("%-18s | %8s %8s %8s %9s | %8s %8s\n", "application",
                "SysCall", "PF", "Timer", "Interrupt", "AMS-Sys",
                "AMS-PF");
    std::printf("%-18s | %36s | %17s\n", "", "OMS events", "AMS events");
    std::printf("-------------------+---------------------------------"
                "----+------------------\n");

    for (std::size_t i = 0; i < frame.numRows(); ++i) {
        const harness::MetricFrame::Row &r = frame.row(i);
        if (frame.at(i, "valid") == 0)
            std::printf("!! validation failed for %s\n",
                        r.workload.c_str());
        auto ev = [&](const char *counter) {
            return (unsigned long long)frame.at(
                i, std::string("events.") + counter);
        };
        std::printf("%-18s | %8llu %8llu %8llu %9llu | %8llu %8llu\n",
                    r.workload.c_str(), ev("oms_syscalls"),
                    ev("oms_page_faults"), ev("timer"),
                    ev("interrupts"), ev("ams_syscalls"),
                    ev("ams_page_faults"));
    }

    std::printf("\nShape checks vs the paper:\n");
    std::printf(" - AMS page faults are compulsory (working-set cold "
                "misses) and dominate proxies;\n");
    std::printf(" - serial-init apps (gauss, kmeans, svm_c, galgel) "
                "shift faults to the OMS;\n");
    std::printf(" - only art produces AMS syscalls.\n");
    return 0;
}
