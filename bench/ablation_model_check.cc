/**
 * @file
 * Ablation C (paper §5.1) — overhead-model cross-check.
 *
 * The paper models MISP's synchrony overhead with three equations:
 *   Eq.1  serialize     = 2*signal + priv
 *   Eq.2  proxy_egress  = 3*signal
 *   Eq.3  proxy_ingress = signal + serialize
 *
 * This bench verifies that the simulator's measured accounting matches
 * the analytic model exactly (the implementation *is* the model), and
 * then uses the event counts to predict the runtime delta between
 * signal=5000 and signal=0, comparing prediction against direct
 * measurement — the same reconstruction the paper uses for Figure 5.
 *
 * A thin wrapper over scenarios/ablation_model_check.scn: the grid
 * (signal-cost machine pair x applications, device IRQs disabled for
 * a deterministic event mix) lives in the spec, which also asserts
 * Eq.1/Eq.2 exactness from its [report] section; this binary derives
 * the prediction-vs-measurement columns.
 */

#include <cmath>

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    harness::MetricFrame frame;
    int exitCode = 0;
    if (scenarioBenchMain("ablation_model_check.scn",
                          "ablation_model_check", argc, argv, &sc,
                          &frame, &exitCode))
        return exitCode;

    printHeader("Ablation C: Eq.1-3 overhead model vs measured "
                "accounting");
    std::printf("%-18s %12s %12s %12s %14s\n", "application",
                "Eq1-check", "Eq2-check", "pred-ovh", "measured-ovh");

    using Frame = harness::MetricFrame;
    const Cycles signal = 5000;
    for (const std::string &name : frame.workloads()) {
        std::size_t at5000 =
            frame.findRow("s5000", {{"workload.name", name}});
        std::size_t at0 = frame.findRow("s0", {{"workload.name", name}});
        if (at5000 == Frame::npos || at0 == Frame::npos)
            continue;
        auto ev = [&](const char *counter) {
            return frame.at(at5000, std::string("events.") + counter);
        };

        // Eq.1 check: serialize windows sum to 2*signal*N + priv.
        double eq1 = 2.0 * signal * ev("serializations") +
                     ev("priv_cycles");
        bool eq1ok = std::abs(eq1 - ev("serialize_cycles")) < 1.0;

        // Eq.2 check: egress overhead is 3*signal per proxy request.
        double eq2 = 3.0 * signal * ev("proxy_requests");
        bool eq2ok = std::abs(eq2 - ev("proxy_signal_cycles")) < 1.0;

        // Predicted extra wall time from the signal cost: every
        // serialization pays 2*signal (Eq.1) and every proxy pays one
        // more signal for the OMS notification (Eq.3). Serialized
        // events do not overlap on one MISP processor, so the sum is a
        // wall-clock prediction.
        double predicted = 2.0 * signal * ev("serializations") +
                           1.0 * signal * ev("proxy_requests");
        double measured =
            frame.at(at5000, "ticks") - frame.at(at0, "ticks");

        std::printf("%-18s %12s %12s %11.2fM %13.2fM\n", name.c_str(),
                    eq1ok ? "exact" : "MISMATCH",
                    eq2ok ? "exact" : "MISMATCH", predicted / 1e6,
                    measured / 1e6);
    }

    std::printf("\nReading: the simulator's serialization/proxy "
                "accounting reproduces Eq.1-3\nexactly; the event-count "
                "reconstruction predicts the measured signal-cost\n"
                "sensitivity to first order (differences come from "
                "overlap with AMS idle time\nand second-order event "
                "displacement — the same caveats the paper's model "
                "has).\n");
    return 0;
}
