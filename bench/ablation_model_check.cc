/**
 * @file
 * Ablation C (paper §5.1) — overhead-model cross-check.
 *
 * The paper models MISP's synchrony overhead with three equations:
 *   Eq.1  serialize     = 2*signal + priv
 *   Eq.2  proxy_egress  = 3*signal
 *   Eq.3  proxy_ingress = signal + serialize
 *
 * This bench verifies that the simulator's measured accounting matches
 * the analytic model exactly (the implementation *is* the model), and
 * then uses the event counts to predict the runtime delta between
 * signal=5000 and signal=0, comparing prediction against direct
 * measurement — the same reconstruction the paper uses for Figure 5.
 */

#include <cmath>

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);
    wl::WorkloadParams params = defaultParams(quick);

    printHeader("Ablation C: Eq.1-3 overhead model vs measured "
                "accounting");
    std::printf("%-18s %12s %12s %12s %14s\n", "application",
                "Eq1-check", "Eq2-check", "pred-ovh", "measured-ovh");

    std::vector<std::string> apps =
        quick ? std::vector<std::string>{"dense_mvm", "gauss"}
              : std::vector<std::string>{"ADAt", "dense_mvm", "gauss",
                                         "kmeans", "sparse_mvm", "swim",
                                         "art"};
    const Cycles signal = 5000;

    for (const std::string &name : apps) {
        const wl::WorkloadInfo *info = wl::findWorkload(name);

        arch::SystemConfig cfg = mispUni(7);
        cfg.misp.signalCycles = signal;
        cfg.kernel.deviceIrqMeanPeriod = 0; // deterministic event mix
        RunResult at5000 = runWorkload(cfg, rt::Backend::Shred, *info,
                                       params);

        // Eq.1 check: serialize windows sum to 2*signal*N + priv.
        double eq1 = 2.0 * signal * double(at5000.events.serializations) +
                     at5000.events.privCycles;
        bool eq1ok = std::abs(eq1 - at5000.events.serializeCycles) < 1.0;

        // Eq.2 check: egress overhead is 3*signal per proxy request.
        double eq2 = 3.0 * signal * double(at5000.events.proxyRequests);
        bool eq2ok = std::abs(eq2 - at5000.events.proxySignalCycles) < 1.0;

        arch::SystemConfig ideal = cfg;
        ideal.misp.signalCycles = 0;
        RunResult at0 = runWorkload(ideal, rt::Backend::Shred, *info,
                                    params);

        // Predicted extra wall time from the signal cost: every
        // serialization pays 2*signal (Eq.1) and every proxy pays one
        // more signal for the OMS notification (Eq.3). Serialized
        // events do not overlap on one MISP processor, so the sum is a
        // wall-clock prediction.
        double predicted =
            2.0 * signal * double(at5000.events.serializations) +
            1.0 * signal * double(at5000.events.proxyRequests);
        double measured = double(at5000.ticks) - double(at0.ticks);

        std::printf("%-18s %12s %12s %11.2fM %13.2fM\n", name.c_str(),
                    eq1ok ? "exact" : "MISMATCH",
                    eq2ok ? "exact" : "MISMATCH", predicted / 1e6,
                    measured / 1e6);
    }

    std::printf("\nReading: the simulator's serialization/proxy "
                "accounting reproduces Eq.1-3\nexactly; the event-count "
                "reconstruction predicts the measured signal-cost\n"
                "sensitivity to first order (differences come from "
                "overlap with AMS idle time\nand second-order event "
                "displacement — the same caveats the paper's model "
                "has).\n");
    return 0;
}
