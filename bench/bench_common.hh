/**
 * @file
 * Shared experiment plumbing for the paper-reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation (Section 5); see DESIGN.md's per-experiment index. Passing
 * `--quick` (or setting MISP_BENCH_QUICK=1) runs smaller inputs for CI
 * smoke purposes.
 */

#ifndef MISP_BENCH_BENCH_COMMON_HH
#define MISP_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "workloads/workload.hh"

namespace misp::bench {

/** Outcome of one measured run. */
struct RunResult {
    Tick ticks = 0;
    bool valid = false;
    /** Host-side performance of the run: retired guest instructions
     *  (all sequencers, all processors), wall-clock seconds, and their
     *  ratio in millions of instructions per host second. */
    std::uint64_t instsRetired = 0;
    double hostSeconds = 0.0;
    double hostMips = 0.0;
    /** Table-1 event counts of processor 0. */
    std::uint64_t omsSyscalls = 0;
    std::uint64_t omsPageFaults = 0;
    std::uint64_t timer = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t amsSyscalls = 0;
    std::uint64_t amsPageFaults = 0;
    std::uint64_t serializations = 0;
    double serializeCycles = 0;
    double privCycles = 0;
    double proxySignalCycles = 0;
    std::uint64_t proxyRequests = 0;
};

inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    }
    const char *env = std::getenv("MISP_BENCH_QUICK");
    return env && env[0] == '1';
}

/** `--no-decode-cache` / MISP_NO_DECODE_CACHE=1: run the reference
 *  per-instruction fetch+decode path instead of the predecoded-block
 *  engine. Simulated results are bit-identical either way; this is the
 *  escape hatch for isolating the engine and for A/B host-time runs. */
inline bool
decodeCacheDisabled(int argc = 0, char **argv = nullptr)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-decode-cache") == 0)
            return true;
    }
    const char *env = std::getenv("MISP_NO_DECODE_CACHE");
    return env && env[0] == '1';
}

/** Default decode-cache setting baked into the config helpers below.
 *  Set once per bench via parseBenchFlags(); explicit assignments to
 *  SystemConfig::misp.decodeCache after construction still win (the
 *  decode-cache ablation relies on that for its A/B legs). */
inline bool gBenchDecodeCache = true;

/** Parse the flags every bench shares; call first thing in main(). */
inline bool
parseBenchFlags(int argc, char **argv)
{
    gBenchDecodeCache = !decodeCacheDisabled(argc, argv);
    return quickMode(argc, argv);
}

/** Sum of retired guest instructions over every sequencer of every
 *  processor in @p sys (shared with the scenario runner). */
inline std::uint64_t
totalInstsRetired(arch::MispSystem &sys)
{
    return harness::totalInstsRetired(sys);
}

/** The paper's default machine: 8 sequencers at 3.0 GHz. */
inline arch::SystemConfig
mispUni(unsigned numAms = 7)
{
    arch::SystemConfig sys = arch::SystemConfig::uniprocessor(numAms);
    sys.misp.decodeCache = gBenchDecodeCache;
    return sys;
}

/** An MP machine with the given per-processor AMS counts; the single
 *  place bench-wide flags are folded into MP configs. */
inline arch::SystemConfig
mispMp(const std::vector<unsigned> &amsCounts)
{
    arch::SystemConfig sys = arch::SystemConfig::mp(amsCounts);
    sys.misp.decodeCache = gBenchDecodeCache;
    return sys;
}

inline arch::SystemConfig
smp8()
{
    return mispMp({0, 0, 0, 0, 0, 0, 0, 0});
}

inline arch::SystemConfig
smp1()
{
    return mispMp({0});
}

/** Uniform host-throughput line, one per measured run, on stderr (so
 *  figure tables on stdout stay clean). Shared with the scenario
 *  runner via harness::reportHost. @return MIPS. */
inline double
reportHost(const std::string &name, std::uint64_t instsRetired,
           double hostSeconds, bool decodeCache)
{
    return harness::reportHost(name, instsRetired, hostSeconds,
                               decodeCache);
}

/** Outcome of one wall-clock-timed simulation run. */
struct TimedRun {
    Tick ticks = 0;
    std::uint64_t instsRetired = 0;
    double hostSeconds = 0.0;
    double hostMips = 0.0;
};

/** Run @p target to completion under the wall clock and emit the
 *  uniform HOST line — the one place measured runs are timed, shared
 *  by runWorkload() and the benches that build their machines by
 *  hand (e.g. fig7). */
inline TimedRun
runTimed(harness::Experiment &exp, os::Process *target,
         const std::string &name, bool decodeCache,
         Tick maxTicks = 2'000'000'000'000ull)
{
    TimedRun out;
    auto t0 = std::chrono::steady_clock::now();
    out.ticks = exp.run(target, maxTicks);
    auto t1 = std::chrono::steady_clock::now();
    out.instsRetired = totalInstsRetired(exp.system());
    out.hostSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.hostMips = reportHost(name, out.instsRetired, out.hostSeconds,
                              decodeCache);
    return out;
}

/** Build + load + run one workload to completion; harvest stats. Every
 *  bench reports host-side throughput uniformly via reportHost(), so
 *  perf trajectories are comparable across figures. */
inline RunResult
runWorkload(const arch::SystemConfig &sys, rt::Backend backend,
            const wl::WorkloadInfo &info, const wl::WorkloadParams &params)
{
    wl::Workload w = info.build(params);
    harness::Experiment exp(sys, backend);
    harness::LoadedProcess proc = exp.load(w.app);
    TimedRun timed = runTimed(exp, proc.process, info.name,
                              sys.misp.decodeCache);
    RunResult out;
    out.ticks = timed.ticks;
    out.valid = !w.validate || w.validate(proc.process->addressSpace());
    out.instsRetired = timed.instsRetired;
    out.hostSeconds = timed.hostSeconds;
    out.hostMips = timed.hostMips;

    harness::EventSnapshot ev =
        harness::snapshotEvents(exp.system().processor(0));
    out.omsSyscalls = ev.omsSyscalls;
    out.omsPageFaults = ev.omsPageFaults;
    out.timer = ev.timer;
    out.interrupts = ev.interrupts;
    out.amsSyscalls = ev.amsSyscalls;
    out.amsPageFaults = ev.amsPageFaults;
    out.serializations = ev.serializations;
    out.serializeCycles = ev.serializeCycles;
    out.privCycles = ev.privCycles;
    out.proxySignalCycles = ev.proxySignalCycles;
    out.proxyRequests = ev.proxyRequests;
    return out;
}

/** Default parameters matching the paper's 1 OMS + 7 AMS setup. */
inline wl::WorkloadParams
defaultParams(bool quick)
{
    wl::WorkloadParams p;
    p.workers = 7;
    p.scale = 1;
    (void)quick; // problem sizes are already scaled; quick trims suites
    return p;
}

/** Workload subset: all in full mode, a spread in quick mode. */
inline std::vector<const wl::WorkloadInfo *>
benchSuite(bool quick)
{
    std::vector<const wl::WorkloadInfo *> out;
    for (const wl::WorkloadInfo &info : wl::allWorkloads()) {
        if (quick && info.name != "dense_mvm" && info.name != "gauss" &&
            info.name != "Raytracer" && info.name != "swim") {
            continue;
        }
        out.push_back(&info);
    }
    return out;
}

inline void
printHeader(const char *title)
{
    std::printf("\n==================================================="
                "=====================\n");
    std::printf("%s\n", title);
    std::printf("====================================================="
                "===================\n");
}

} // namespace misp::bench

#endif // MISP_BENCH_BENCH_COMMON_HH
