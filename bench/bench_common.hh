/**
 * @file
 * Shared experiment plumbing for the paper-reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation (Section 5); see DESIGN.md's per-experiment index. Passing
 * `--quick` (or setting MISP_BENCH_QUICK=1) runs smaller inputs for CI
 * smoke purposes.
 */

#ifndef MISP_BENCH_BENCH_COMMON_HH
#define MISP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "workloads/workload.hh"

namespace misp::bench {

/** Outcome of one measured run. */
struct RunResult {
    Tick ticks = 0;
    bool valid = false;
    /** Table-1 event counts of processor 0. */
    std::uint64_t omsSyscalls = 0;
    std::uint64_t omsPageFaults = 0;
    std::uint64_t timer = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t amsSyscalls = 0;
    std::uint64_t amsPageFaults = 0;
    std::uint64_t serializations = 0;
    double serializeCycles = 0;
    double privCycles = 0;
    double proxySignalCycles = 0;
    std::uint64_t proxyRequests = 0;
};

inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    }
    const char *env = std::getenv("MISP_BENCH_QUICK");
    return env && env[0] == '1';
}

/** The paper's default machine: 8 sequencers at 3.0 GHz. */
inline arch::SystemConfig
mispUni(unsigned numAms = 7)
{
    return arch::SystemConfig::uniprocessor(numAms);
}

inline arch::SystemConfig
smp8()
{
    return arch::SystemConfig::mp({0, 0, 0, 0, 0, 0, 0, 0});
}

inline arch::SystemConfig
smp1()
{
    return arch::SystemConfig::mp({0});
}

/** Build + load + run one workload to completion; harvest stats. */
inline RunResult
runWorkload(const arch::SystemConfig &sys, rt::Backend backend,
            const wl::WorkloadInfo &info, const wl::WorkloadParams &params)
{
    wl::Workload w = info.build(params);
    harness::Experiment exp(sys, backend);
    harness::LoadedProcess proc = exp.load(w.app);
    RunResult out;
    out.ticks = exp.run(proc.process);
    out.valid = !w.validate || w.validate(proc.process->addressSpace());

    arch::MispProcessor &mp = exp.system().processor(0);
    using arch::Ring0Cause;
    out.omsSyscalls = mp.eventCount(Ring0Cause::OmsSyscall);
    out.omsPageFaults = mp.eventCount(Ring0Cause::OmsPageFault);
    out.timer = mp.eventCount(Ring0Cause::Timer);
    out.interrupts = mp.eventCount(Ring0Cause::OtherInterrupt);
    out.amsSyscalls = mp.eventCount(Ring0Cause::ProxySyscall);
    out.amsPageFaults = mp.eventCount(Ring0Cause::ProxyPageFault);
    out.serializations = mp.serializations();
    out.serializeCycles = mp.statGroup().lookupValue("serializeCycles");
    out.privCycles = mp.statGroup().lookupValue("privCycles");
    out.proxySignalCycles =
        mp.statGroup().lookupValue("proxySignalCycles");
    out.proxyRequests = static_cast<std::uint64_t>(
        mp.statGroup().lookupValue("proxyRequests"));
    return out;
}

/** Default parameters matching the paper's 1 OMS + 7 AMS setup. */
inline wl::WorkloadParams
defaultParams(bool quick)
{
    wl::WorkloadParams p;
    p.workers = 7;
    p.scale = 1;
    (void)quick; // problem sizes are already scaled; quick trims suites
    return p;
}

/** Workload subset: all in full mode, a spread in quick mode. */
inline std::vector<const wl::WorkloadInfo *>
benchSuite(bool quick)
{
    std::vector<const wl::WorkloadInfo *> out;
    for (const wl::WorkloadInfo &info : wl::allWorkloads()) {
        if (quick && info.name != "dense_mvm" && info.name != "gauss" &&
            info.name != "Raytracer" && info.name != "swim") {
            continue;
        }
        out.push_back(&info);
    }
    return out;
}

inline void
printHeader(const char *title)
{
    std::printf("\n==================================================="
                "=====================\n");
    std::printf("%s\n", title);
    std::printf("====================================================="
                "===================\n");
}

} // namespace misp::bench

#endif // MISP_BENCH_BENCH_COMMON_HH
