/**
 * @file
 * Shared experiment plumbing for the paper-reproduction benches.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation (Section 5); see DESIGN.md's per-experiment index. Passing
 * `--quick` (or setting MISP_BENCH_QUICK=1) runs smaller inputs for CI
 * smoke purposes.
 */

#ifndef MISP_BENCH_BENCH_COMMON_HH
#define MISP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "driver/runner.hh"
#include "harness/run_record.hh"
#include "workloads/workload.hh"

namespace misp::bench {

/** Outcome of one measured run — the unified record of the run layer
 *  (status enum, ticks, validation, EventSnapshot under `.events`,
 *  host throughput, derived metrics). */
using RunResult = harness::RunRecord;

inline bool
quickMode(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            return true;
    }
    const char *env = std::getenv("MISP_BENCH_QUICK");
    return env && env[0] == '1';
}

/** `--engine=ref|cache|superblock` (or MISP_ENGINE), with
 *  `--no-decode-cache` / MISP_NO_DECODE_CACHE=1 kept as an alias for
 *  `--engine=ref`. Simulated results are bit-identical across engines;
 *  this is the escape hatch for isolating an engine and for A/B
 *  host-time runs. Returns the default engine when nothing is given. */
inline bool
benchEngine(int argc, char **argv, cpu::Engine *engine)
{
    bool given = false;
    const char *noDc = std::getenv("MISP_NO_DECODE_CACHE");
    if (noDc && noDc[0] == '1') {
        *engine = cpu::Engine::Reference;
        given = true;
    }
    if (const char *env = std::getenv("MISP_ENGINE"))
        given = cpu::parseEngineName(env, engine) || given;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-decode-cache") == 0) {
            *engine = cpu::Engine::Reference;
            given = true;
        } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
            given = cpu::parseEngineName(argv[i] + 9, engine) || given;
        }
    }
    return given;
}

/** Default execution engine baked into the config helpers below. Set
 *  once per bench via parseBenchFlags(); explicit assignments to
 *  SystemConfig::misp.engine after construction still win (the
 *  decode-cache ablation relies on that for its A/B/C legs). */
inline cpu::Engine gBenchEngine = cpu::Engine::Superblock;
/** True when the user explicitly picked an engine (flag or env) — the
 *  only case where scenario-declared machine engines get overridden. */
inline bool gBenchEngineForced = false;

/** Parse the flags every bench shares; call first thing in main(). */
inline bool
parseBenchFlags(int argc, char **argv)
{
    gBenchEngineForced = benchEngine(argc, argv, &gBenchEngine);
    return quickMode(argc, argv);
}

/** Sum of retired guest instructions over every sequencer of every
 *  processor in @p sys (shared with the scenario runner). */
inline std::uint64_t
totalInstsRetired(arch::MispSystem &sys)
{
    return harness::totalInstsRetired(sys);
}

/** The paper's default machine: 8 sequencers at 3.0 GHz. */
inline arch::SystemConfig
mispUni(unsigned numAms = 7)
{
    arch::SystemConfig sys = arch::SystemConfig::uniprocessor(numAms);
    sys.misp.engine = gBenchEngine;
    return sys;
}

/** An MP machine with the given per-processor AMS counts; the single
 *  place bench-wide flags are folded into MP configs. */
inline arch::SystemConfig
mispMp(const std::vector<unsigned> &amsCounts)
{
    arch::SystemConfig sys = arch::SystemConfig::mp(amsCounts);
    sys.misp.engine = gBenchEngine;
    return sys;
}

inline arch::SystemConfig
smp8()
{
    return mispMp({0, 0, 0, 0, 0, 0, 0, 0});
}

inline arch::SystemConfig
smp1()
{
    return mispMp({0});
}

/** Uniform host-throughput line, one per measured run, on stderr (so
 *  figure tables on stdout stay clean). Shared with the scenario
 *  runner via harness::reportHost. @return MIPS. */
inline double
reportHost(const std::string &name, std::uint64_t instsRetired,
           double hostSeconds, cpu::Engine engine)
{
    return harness::reportHost(name, instsRetired, hostSeconds, engine);
}

/** Build + load + run one workload to completion; harvest stats —
 *  a thin adapter over the unified run layer (harness::runOne), so
 *  bench runs can never diverge from `mispsim` scenario runs. The
 *  uniform HOST throughput line keeps perf trajectories comparable
 *  across figures. */
inline RunResult
runWorkload(const arch::SystemConfig &sys, rt::Backend backend,
            const wl::WorkloadInfo &info, const wl::WorkloadParams &params)
{
    harness::RunRequest req;
    req.label = info.name;
    req.config = sys;
    req.backend = backend;
    req.target = {info.name, params};
    return harness::runOne(req);
}

/** Default parameters matching the paper's 1 OMS + 7 AMS setup. */
inline wl::WorkloadParams
defaultParams(bool quick)
{
    wl::WorkloadParams p;
    p.workers = 7;
    p.scale = 1;
    (void)quick; // problem sizes are already scaled; quick trims suites
    return p;
}

/** Workload subset: all in full mode, a spread in quick mode. */
inline std::vector<const wl::WorkloadInfo *>
benchSuite(bool quick)
{
    std::vector<const wl::WorkloadInfo *> out;
    for (const wl::WorkloadInfo &info : wl::allWorkloads()) {
        if (quick && info.name != "dense_mvm" && info.name != "gauss" &&
            info.name != "Raytracer" && info.name != "swim") {
            continue;
        }
        out.push_back(&info);
    }
    return out;
}

/**
 * The shared scaffolding of every scenario-wrapper bench: quiet
 * logging, the common flags (--quick / --no-decode-cache / --points),
 * the run of @p scn through the scenario runner, and the sweep's
 * MetricFrame — the one store the bench's presentation code queries
 * (the same frame `mispsim` renders and asserts against). Returns
 * true when the caller should exit immediately with *exitCode — on a
 * failed run (1), or after `--points` printed the canonical
 * equivalence lines (0).
 */
inline bool
scenarioBenchMain(const char *scn, const char *tool, int argc,
                  char **argv, driver::Scenario *sc,
                  harness::MetricFrame *frame, int *exitCode)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);
    bool points = false;
    for (int i = 1; i < argc; ++i)
        points = points || std::strcmp(argv[i], "--points") == 0;

    driver::RunnerOptions opts;
    opts.forceEngine = gBenchEngineForced;
    opts.engine = gBenchEngine;
    std::vector<driver::PointResult> results;
    if (!driver::runScenarioByName(scn, argv[0], quick, opts, tool, sc,
                                   &results)) {
        *exitCode = 1;
        return true;
    }
    *frame = driver::buildMetricFrame(*sc, results);
    if (points) {
        driver::writePoints(std::cout, *frame);
        *exitCode = 0;
        return true;
    }
    return false;
}

inline void
printHeader(const char *title)
{
    std::printf("\n==================================================="
                "=====================\n");
    std::printf("%s\n", title);
    std::printf("====================================================="
                "===================\n");
}

} // namespace misp::bench

#endif // MISP_BENCH_BENCH_COMMON_HH
