/**
 * @file
 * Table 2 — "Applications Ported to the MISP Architecture".
 *
 * The paper reports porting times of 0.5–15 days, with most applications
 * needing only a recompile against ShredLib's thread-to-shred API
 * mapping header. This reproduction makes that claim *mechanical* and
 * measurable: every workload here is built once against the stub-library
 * ABI, and retargeting SMP -> MISP swaps the runtime library underneath
 * without touching the application image at all.
 *
 * This bench verifies, per application:
 *   1. the program image is byte-identical under both backends
 *      ("source changes: 0, relink only"), and
 *   2. both targets run it to completion with valid results.
 *
 * The one structural port the paper needed (Open Dynamics Engine: keep
 * blocking I/O on a native OS thread, compute in shreds) is reproduced
 * by examples/mixed_io.cc.
 */

#include "bench_common.hh"
#include "shredlib/stub_library.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);
    wl::WorkloadParams params = defaultParams(quick);
    params.workers = 3; // smaller gangs: this bench checks porting only

    printHeader("Table 2: porting applications between SMP threads and "
                "MISP shreds");

    // The two runtime libraries export the same symbols at the same
    // addresses (the \"API translation header\" made literal).
    isa::Program shredStubs = rt::buildStubLibrary(rt::Backend::Shred);
    isa::Program osStubs = rt::buildStubLibrary(rt::Backend::OsThread);
    bool abiMatch = shredStubs.symbols == osStubs.symbols;
    std::printf("stub ABI symbol tables identical across backends: %s\n",
                abiMatch ? "yes" : "NO");

    std::printf("\n%-18s %14s %12s %12s %12s\n", "application",
                "image-bytes", "bytes-diff", "runs-on-SMP",
                "runs-on-MISP");

    bool allZero = true;
    for (const wl::WorkloadInfo *info : benchSuite(quick)) {
        // \"Port\" the application: build it for each target.
        wl::Workload forSmp = info->build(params);
        wl::Workload forMisp = info->build(params);
        auto smpBytes = forSmp.app.program.bytes();
        auto mispBytes = forMisp.app.program.bytes();
        std::size_t diff = 0;
        for (std::size_t i = 0;
             i < std::max(smpBytes.size(), mispBytes.size()); ++i) {
            std::uint8_t a = i < smpBytes.size() ? smpBytes[i] : 0;
            std::uint8_t b = i < mispBytes.size() ? mispBytes[i] : 0;
            if (a != b)
                ++diff;
        }
        allZero = allZero && diff == 0;

        RunResult smp = runWorkload(smp8(), rt::Backend::OsThread, *info,
                                    params);
        RunResult misp = runWorkload(mispUni(7), rt::Backend::Shred,
                                     *info, params);
        std::printf("%-18s %14zu %12zu %12s %12s\n", info->name.c_str(),
                    mispBytes.size(), diff,
                    (smp.ticks && smp.valid) ? "ok" : "FAIL",
                    (misp.ticks && misp.valid) ? "ok" : "FAIL");
    }

    std::printf("\nResult: %s — every application retargets with zero "
                "image changes;\nporting = relinking against the other "
                "runtime (the paper's one-header story).\n",
                allZero && abiMatch ? "CONFIRMED" : "NOT CONFIRMED");
    std::printf("The ODE-style structural exception (blocking I/O kept "
                "on an OS thread)\nis demonstrated by "
                "examples/mixed_io.\n");
    return 0;
}
