/**
 * @file
 * Figure 5 — "Sensitivity to Signal Cost".
 *
 * Overhead of the inter-sequencer signaling cost relative to an ideal
 * zero-cost hardware implementation, for signal ∈ {500, 1000, 5000}
 * cycles. The paper reports ≤0.65% worst case (kmeans) and 0.15%
 * average at 5000 cycles: throughput is insensitive to signal cost.
 *
 * We measure directly (four simulations per application) rather than
 * reconstructing from event counts; bench/ablation_model_check.cc
 * verifies the Eq.1/Eq.2 analytic reconstruction separately.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);
    wl::WorkloadParams params = defaultParams(quick);

    const Cycles costs[] = {500, 1000, 5000};

    printHeader("Figure 5: sensitivity to inter-sequencer signal cost "
                "(overhead vs signal=0)");
    std::printf("%-18s %10s %10s %10s\n", "application", "500cyc",
                "1000cyc", "5000cyc");

    double worst = 0;
    const char *worstApp = "";
    double sum5000 = 0;
    int n = 0;

    for (const wl::WorkloadInfo *info : benchSuite(quick)) {
        arch::SystemConfig base = mispUni(7);
        base.misp.signalCycles = 0;
        RunResult ideal = runWorkload(base, rt::Backend::Shred, *info,
                                      params);

        std::printf("%-18s", info->name.c_str());
        for (Cycles cost : costs) {
            arch::SystemConfig cfg = mispUni(7);
            cfg.misp.signalCycles = cost;
            RunResult r = runWorkload(cfg, rt::Backend::Shred, *info,
                                      params);
            double overhead = (double(r.ticks) / double(ideal.ticks) -
                               1.0) *
                              100.0;
            std::printf(" %+9.3f%%", overhead);
            if (cost == 5000) {
                sum5000 += overhead;
                ++n;
                if (overhead > worst) {
                    worst = overhead;
                    worstApp = info->name.c_str();
                }
            }
        }
        std::printf("\n");
    }

    std::printf("\nAt signal = 5000 cycles: average overhead %+.3f%% "
                "(paper: 0.15%%), worst %+.3f%% on %s (paper: 0.65%% on "
                "kmeans).\n",
                n ? sum5000 / n : 0.0, worst, worstApp);
    std::printf("Claim check: throughput is insensitive to the "
                "inter-sequencer signaling cost.\n");
    return 0;
}
