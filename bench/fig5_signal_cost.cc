/**
 * @file
 * Figure 5 — "Sensitivity to Signal Cost".
 *
 * Thin wrapper over the scenario driver: the signal ∈ {0, 500, 1000,
 * 5000} x workload grid lives in scenarios/fig5_signal.scn and runs
 * through the unified run layer (the same engine
 * `mispsim scenarios/fig5_signal.scn` uses); this binary only derives
 * the figure's presentation — overhead of each signal cost relative to
 * the ideal zero-cost run of the same application. The paper reports
 * ≤0.65% worst case (kmeans) and 0.15% average at 5000 cycles:
 * throughput is insensitive to signal cost.
 *
 * `--points` prints the canonical per-run lines, which CI diffs
 * against `mispsim scenarios/fig5_signal.scn --points`.
 *
 * We measure directly (four simulations per application) rather than
 * reconstructing from event counts; bench/ablation_model_check.cc
 * verifies the Eq.1/Eq.2 analytic reconstruction separately.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    harness::MetricFrame frame;
    int exitCode = 0;
    if (scenarioBenchMain("fig5_signal.scn", "fig5_signal_cost",
                          argc, argv, &sc, &frame, &exitCode))
        return exitCode;

    const char *costs[] = {"500", "1000", "5000"};

    printHeader("Figure 5: sensitivity to inter-sequencer signal cost "
                "(overhead vs signal=0)");
    std::printf("%-18s %10s %10s %10s\n", "application", "500cyc",
                "1000cyc", "5000cyc");

    using Frame = harness::MetricFrame;
    double worst = 0;
    std::string worstApp;
    double sum5000 = 0;
    int n = 0;

    for (const std::string &name : frame.workloads()) {
        std::size_t ideal = frame.findRow(
            "misp",
            {{"workload.name", name}, {"machine.signal_cycles", "0"}});
        if (ideal == Frame::npos) {
            std::printf("!! missing grid point for %s\n", name.c_str());
            continue;
        }
        std::printf("%-18s", name.c_str());
        for (const char *cost : costs) {
            std::size_t r = frame.findRow(
                "misp", {{"workload.name", name},
                         {"machine.signal_cycles", cost}});
            if (r == Frame::npos) {
                std::printf(" %10s", "-");
                continue;
            }
            double overhead = (frame.at(r, "ticks") /
                                   frame.at(ideal, "ticks") -
                               1.0) *
                              100.0;
            std::printf(" %+9.3f%%", overhead);
            if (std::string(cost) == "5000") {
                sum5000 += overhead;
                ++n;
                if (overhead > worst) {
                    worst = overhead;
                    worstApp = name;
                }
            }
        }
        std::printf("\n");
    }

    std::printf("\nAt signal = 5000 cycles: average overhead %+.3f%% "
                "(paper: 0.15%%), worst %+.3f%% on %s (paper: 0.65%% on "
                "kmeans).\n",
                n ? sum5000 / n : 0.0, worst, worstApp.c_str());
    std::printf("Claim check: throughput is insensitive to the "
                "inter-sequencer signaling cost.\n");
    return 0;
}
