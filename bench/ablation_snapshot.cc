/**
 * @file
 * Snapshot-subsystem ablation: what machine-state images cost and what
 * warmup amortization buys.
 *
 * Three measurements over the CI smoke sweep (scenarios/smoke.scn):
 *
 *  1. Image mechanics, per grid point: serialize time, image size, and
 *     deserialize+rebuild time (API-level, no file I/O in the timing).
 *  2. A cold sweep vs a `--from-snapshot` sweep restored from warmup
 *     images: the end-to-end wall-clock speedup of fork-many.
 *  3. The determinism contract: restored runs must report identical
 *     ticks / events / retired instructions to cold runs (any
 *     divergence fails the bench).
 *
 * Results land in BENCH_snapshot.json so CI keeps a trajectory.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_common.hh"
#include "snapshot/snapshot.hh"

using namespace misp;
using namespace misp::bench;

namespace {

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

struct ImageCost {
    std::uint64_t bytes = 0;
    double saveMs = 0;
    double restoreMs = 0;
    Tick savedTick = 0;
};

/** Warm one point up, then time the serialize and rebuild paths. */
ImageCost
measureImage(const driver::Scenario &sc, const driver::ScenarioPoint &pt)
{
    ImageCost out;
    driver::RunnerOptions opts;
    opts.hostLines = false;
    harness::RunRequest req = driver::makeRunRequest(sc, pt, opts);

    const wl::WorkloadInfo *info = wl::findWorkload(req.target.name);
    MISP_ASSERT(info != nullptr);
    wl::Workload w = info->build(req.target.params);
    harness::Experiment exp(req.config, req.backend);
    harness::LoadedProcess proc = exp.load(w.app);
    exp.system().start();
    exp.system().run(sc.snapshotWarmupTicks);
    if (!snap::advanceToSnapshotPoint(exp))
        return out;

    std::string image, err;
    auto t0 = std::chrono::steady_clock::now();
    if (!snap::saveExperiment(exp, proc.process, 0, req.label, &image,
                              &err)) {
        std::fprintf(stderr, "ablation_snapshot: save failed: %s\n",
                     err.c_str());
        return out;
    }
    auto t1 = std::chrono::steady_clock::now();
    snap::RestoredExperiment restored;
    if (!snap::restoreExperiment(image, &restored, &err)) {
        std::fprintf(stderr, "ablation_snapshot: restore failed: %s\n",
                     err.c_str());
        return out;
    }
    auto t2 = std::chrono::steady_clock::now();

    out.bytes = image.size();
    out.saveMs = seconds(t0, t1) * 1e3;
    out.restoreMs = seconds(t1, t2) * 1e3;
    out.savedTick = exp.system().eventQueue().curTick();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const bool quick = parseBenchFlags(argc, argv);

    printHeader("Snapshot ablation: image cost + warmup-amortized sweep "
                "speedup");

    std::string err;
    driver::Scenario sc;
    std::vector<driver::ScenarioPoint> pts;
    {
        std::string path =
            driver::findScenarioFile("smoke.scn", argv[0]);
        driver::SpecFile spec;
        if (path.empty() ||
            !driver::SpecFile::parseFile(path, &spec, &err) ||
            !driver::Scenario::fromSpec(spec, &sc, &err) ||
            !sc.expandPoints(quick, &pts, &err)) {
            std::fprintf(stderr, "ablation_snapshot: %s\n",
                         err.empty() ? "smoke.scn not found"
                                     : err.c_str());
            return 1;
        }
    }

    // 1. Image mechanics per point.
    std::vector<ImageCost> costs;
    std::printf("%-8s %10s %12s %10s %12s\n", "point", "image_KB",
                "save_ms", "restore_ms", "saved_tick");
    for (std::size_t i = 0; i < pts.size(); ++i) {
        costs.push_back(measureImage(sc, pts[i]));
        const ImageCost &c = costs.back();
        std::printf("%-8zu %10.1f %12.2f %10.2f %12llu\n", i,
                    c.bytes / 1024.0, c.saveMs, c.restoreMs,
                    (unsigned long long)c.savedTick);
    }

    // 2. Cold sweep vs restored sweep.
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "misp_ablation_snapshot";
    fs::create_directories(dir);

    driver::RunnerOptions cold;
    cold.hostLines = false;
    auto c0 = std::chrono::steady_clock::now();
    std::vector<driver::PointResult> coldRun =
        driver::ScenarioRunner(cold).runAll(sc, pts);
    auto c1 = std::chrono::steady_clock::now();

    driver::RunnerOptions save = cold;
    save.snapshotSaveDir = dir.string();
    std::vector<driver::PointResult> saveRun =
        driver::ScenarioRunner(save).runAll(sc, pts);

    driver::RunnerOptions warm = cold;
    warm.snapshotLoadDir = dir.string();
    auto w0 = std::chrono::steady_clock::now();
    std::vector<driver::PointResult> warmRun =
        driver::ScenarioRunner(warm).runAll(sc, pts);
    auto w1 = std::chrono::steady_clock::now();

    const double coldSeconds = seconds(c0, c1);
    const double warmSeconds = seconds(w0, w1);
    const double speedup =
        warmSeconds > 0 ? coldSeconds / warmSeconds : 0.0;

    // 3. Determinism contract.
    bool identical = true;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        identical = identical && coldRun[i].run.ok() &&
                    saveRun[i].run.ok() && warmRun[i].run.ok() &&
                    coldRun[i].run.ticks == saveRun[i].run.ticks &&
                    coldRun[i].run.ticks == warmRun[i].run.ticks &&
                    coldRun[i].run.instsRetired ==
                        warmRun[i].run.instsRetired;
        for (const harness::EventField &f : harness::eventFields()) {
            identical = identical && f.get(coldRun[i].run.events) ==
                                         f.get(warmRun[i].run.events);
        }
    }

    std::printf("\nsweep (%zu points): cold %.2fs, from-snapshot %.2fs "
                "-> %.2fx (%s)\n",
                pts.size(), coldSeconds, warmSeconds, speedup,
                identical ? "identical results" : "DIVERGED");

    FILE *json = std::fopen("BENCH_snapshot.json", "w");
    if (json) {
        std::fprintf(json, "{\n  \"scenario\": \"%s\",\n", sc.name.c_str());
        std::fprintf(json, "  \"warmup_ticks\": %llu,\n",
                     (unsigned long long)sc.snapshotWarmupTicks);
        std::fprintf(json, "  \"points\": [\n");
        for (std::size_t i = 0; i < costs.size(); ++i) {
            std::fprintf(
                json,
                "    {\"image_bytes\": %llu, \"save_ms\": %.2f, "
                "\"restore_ms\": %.2f, \"saved_tick\": %llu}%s\n",
                (unsigned long long)costs[i].bytes, costs[i].saveMs,
                costs[i].restoreMs,
                (unsigned long long)costs[i].savedTick,
                i + 1 < costs.size() ? "," : "");
        }
        std::fprintf(json,
                     "  ],\n  \"cold_seconds\": %.3f,\n"
                     "  \"warm_seconds\": %.3f,\n"
                     "  \"sweep_speedup\": %.3f,\n"
                     "  \"identical\": %s\n}\n",
                     coldSeconds, warmSeconds, speedup,
                     identical ? "true" : "false");
        std::fclose(json);
        std::printf("wrote BENCH_snapshot.json\n");
    }

    fs::remove_all(dir);
    if (!identical) {
        std::printf("FAIL: restored runs diverged from cold runs\n");
        return 1;
    }
    return 0;
}
