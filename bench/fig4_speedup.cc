/**
 * @file
 * Figure 4 — "MISP Performance: 1 OMS + 7 AMS".
 *
 * For each workload, speedup over single-processor performance on:
 *  - the MISP uniprocessor (1 OMS + 7 AMS, ShredLib runtime), and
 *  - an equivalently configured 8-core SMP (OS threads).
 *
 * Paper result: the RMS applications run on average 1.5% slower on MISP
 * than SMP, the SPEComp applications 1.9% faster — i.e. suspending all
 * AMSs during privileged execution has little practical effect.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);
    wl::WorkloadParams params = defaultParams(quick);

    printHeader("Figure 4: MISP (1 OMS + 7 AMS) vs SMP (8 cores), "
                "speedup over 1P");
    std::printf("%-18s %10s %10s %10s %12s\n", "application", "1P(Mcyc)",
                "MISP", "SMP", "MISP-vs-SMP");

    double rmsSum = 0, specSum = 0;
    int rmsN = 0, specN = 0;

    for (const wl::WorkloadInfo *info : benchSuite(quick)) {
        RunResult oneP = runWorkload(smp1(), rt::Backend::OsThread, *info,
                                     params);
        RunResult misp = runWorkload(mispUni(7), rt::Backend::Shred,
                                     *info, params);
        RunResult smp = runWorkload(smp8(), rt::Backend::OsThread, *info,
                                    params);
        if (!oneP.valid || !misp.valid || !smp.valid)
            std::printf("!! validation failed for %s\n",
                        info->name.c_str());

        double sMisp = double(oneP.ticks) / double(misp.ticks);
        double sSmp = double(oneP.ticks) / double(smp.ticks);
        double delta = (double(smp.ticks) / double(misp.ticks) - 1.0) *
                       100.0;
        std::printf("%-18s %10.1f %9.2fx %9.2fx %+11.2f%%\n",
                    info->name.c_str(), oneP.ticks / 1e6, sMisp, sSmp,
                    delta);
        if (info->suite == "rms") {
            rmsSum += delta;
            ++rmsN;
        } else if (info->suite == "specomp") {
            specSum += delta;
            ++specN;
        }
    }

    std::printf("\nRMS average MISP-vs-SMP: %+.2f%%  "
                "(paper: -1.5%%, i.e. MISP slightly slower)\n",
                rmsN ? rmsSum / rmsN : 0.0);
    std::printf("SPEComp average MISP-vs-SMP: %+.2f%%  "
                "(paper: +1.9%%, i.e. MISP slightly faster)\n",
                specN ? specSum / specN : 0.0);
    std::printf("Claim check: |average delta| small => application "
                "performance is insensitive\nto AMS suspension during "
                "privilege transitions (paper Section 5.3).\n");
    return 0;
}
