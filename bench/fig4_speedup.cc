/**
 * @file
 * Figure 4 — "MISP Performance: 1 OMS + 7 AMS".
 *
 * Thin wrapper over the scenario driver: the machine grid and workload
 * sweep live in scenarios/fig4.scn, the runs go through the shared
 * ScenarioRunner (the same engine `mispsim scenarios/fig4.scn` uses),
 * and this binary only derives the figure's presentation — speedups
 * over the 1P baseline and the RMS/SPEComp averages.
 *
 * `--points` prints the canonical per-run lines instead, which CI
 * diffs against `mispsim scenarios/fig4.scn --points` to assert the
 * wrapper and the driver produce identical simulated numbers.
 *
 * Paper result: the RMS applications run on average 1.5% slower on MISP
 * than SMP, the SPEComp applications 1.9% faster — i.e. suspending all
 * AMSs during privileged execution has little practical effect.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    harness::MetricFrame frame;
    int exitCode = 0;
    if (scenarioBenchMain("fig4.scn", "fig4_speedup", argc, argv,
                          &sc, &frame, &exitCode))
        return exitCode;

    printHeader("Figure 4: MISP (1 OMS + 7 AMS) vs SMP (8 cores), "
                "speedup over 1P");
    std::printf("%-18s %10s %10s %10s %12s\n", "application", "1P(Mcyc)",
                "MISP", "SMP", "MISP-vs-SMP");

    using Frame = harness::MetricFrame;
    double rmsSum = 0, specSum = 0;
    int rmsN = 0, specN = 0;
    for (const std::string &name : frame.workloads()) {
        std::size_t oneP = frame.findRow("1p", name, 0);
        std::size_t misp = frame.findRow("misp", name, 0);
        std::size_t smp = frame.findRow("smp8", name, 0);
        if (oneP == Frame::npos || misp == Frame::npos ||
            smp == Frame::npos) {
            std::printf("!! missing grid point for %s\n", name.c_str());
            continue;
        }
        if (frame.at(oneP, "valid") == 0 || frame.at(misp, "valid") == 0 ||
            frame.at(smp, "valid") == 0)
            std::printf("!! validation failed for %s\n", name.c_str());

        double sMisp = frame.at(oneP, "ticks") / frame.at(misp, "ticks");
        double sSmp = frame.at(oneP, "ticks") / frame.at(smp, "ticks");
        double delta =
            (frame.at(smp, "ticks") / frame.at(misp, "ticks") - 1.0) *
            100.0;
        std::printf("%-18s %10.1f %9.2fx %9.2fx %+11.2f%%\n", name.c_str(),
                    frame.at(oneP, "mcycles"), sMisp, sSmp, delta);
        const wl::WorkloadInfo *info = wl::findWorkload(name);
        if (info && info->suite == "rms") {
            rmsSum += delta;
            ++rmsN;
        } else if (info && info->suite == "specomp") {
            specSum += delta;
            ++specN;
        }
    }

    std::printf("\nRMS average MISP-vs-SMP: %+.2f%%  "
                "(paper: -1.5%%, i.e. MISP slightly slower)\n",
                rmsN ? rmsSum / rmsN : 0.0);
    std::printf("SPEComp average MISP-vs-SMP: %+.2f%%  "
                "(paper: +1.9%%, i.e. MISP slightly faster)\n",
                specN ? specSum / specN : 0.0);
    std::printf("Claim check: |average delta| small => application "
                "performance is insensitive\nto AMS suspension during "
                "privilege transitions (paper Section 5.3).\n");
    return 0;
}
