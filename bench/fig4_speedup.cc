/**
 * @file
 * Figure 4 — "MISP Performance: 1 OMS + 7 AMS".
 *
 * Thin wrapper over the scenario driver: the machine grid and workload
 * sweep live in scenarios/fig4.scn, the runs go through the shared
 * ScenarioRunner (the same engine `mispsim scenarios/fig4.scn` uses),
 * and this binary only derives the figure's presentation — speedups
 * over the 1P baseline and the RMS/SPEComp averages.
 *
 * `--points` prints the canonical per-run lines instead, which CI
 * diffs against `mispsim scenarios/fig4.scn --points` to assert the
 * wrapper and the driver produce identical simulated numbers.
 *
 * Paper result: the RMS applications run on average 1.5% slower on MISP
 * than SMP, the SPEComp applications 1.9% faster — i.e. suspending all
 * AMSs during privileged execution has little practical effect.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    std::vector<driver::PointResult> results;
    int exitCode = 0;
    if (scenarioBenchMain("fig4.scn", "fig4_speedup", argc, argv,
                          &sc, &results, &exitCode))
        return exitCode;

    printHeader("Figure 4: MISP (1 OMS + 7 AMS) vs SMP (8 cores), "
                "speedup over 1P");
    std::printf("%-18s %10s %10s %10s %12s\n", "application", "1P(Mcyc)",
                "MISP", "SMP", "MISP-vs-SMP");

    // The swept workloads, in grid order.
    std::vector<std::string> names;
    for (const driver::PointResult &r : results) {
        if (r.machine == "1p")
            names.push_back(r.workload);
    }

    double rmsSum = 0, specSum = 0;
    int rmsN = 0, specN = 0;
    for (const std::string &name : names) {
        const driver::PointResult *oneP =
            driver::findResult(results, "1p", name, 0);
        const driver::PointResult *misp =
            driver::findResult(results, "misp", name, 0);
        const driver::PointResult *smp =
            driver::findResult(results, "smp8", name, 0);
        if (!oneP || !misp || !smp) {
            std::printf("!! missing grid point for %s\n", name.c_str());
            continue;
        }
        if (!oneP->run.valid || !misp->run.valid || !smp->run.valid)
            std::printf("!! validation failed for %s\n", name.c_str());

        double sMisp = double(oneP->run.ticks) / double(misp->run.ticks);
        double sSmp = double(oneP->run.ticks) / double(smp->run.ticks);
        double delta =
            (double(smp->run.ticks) / double(misp->run.ticks) - 1.0) * 100.0;
        std::printf("%-18s %10.1f %9.2fx %9.2fx %+11.2f%%\n", name.c_str(),
                    oneP->run.ticks / 1e6, sMisp, sSmp, delta);
        const wl::WorkloadInfo *info = wl::findWorkload(name);
        if (info && info->suite == "rms") {
            rmsSum += delta;
            ++rmsN;
        } else if (info && info->suite == "specomp") {
            specSum += delta;
            ++specN;
        }
    }

    std::printf("\nRMS average MISP-vs-SMP: %+.2f%%  "
                "(paper: -1.5%%, i.e. MISP slightly slower)\n",
                rmsN ? rmsSum / rmsN : 0.0);
    std::printf("SPEComp average MISP-vs-SMP: %+.2f%%  "
                "(paper: +1.9%%, i.e. MISP slightly faster)\n",
                specN ? specSum / specN : 0.0);
    std::printf("Claim check: |average delta| small => application "
                "performance is insensitive\nto AMS suspension during "
                "privilege transitions (paper Section 5.3).\n");
    return 0;
}
