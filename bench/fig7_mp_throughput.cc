/**
 * @file
 * Figure 6 + Figure 7 — MISP multiprocessor configurations and
 * throughput under multiprogramming.
 *
 * Figure 6 defines the 8-sequencer MP configurations (4x2, 2x4, 1x8,
 * 1x4+4, ...). Figure 7 runs RayTracer (multi-shredded) while adding
 * 0..4 competing single-threaded processes and plots RayTracer's
 * speedup relative to its unloaded run on the same configuration.
 *
 * Paper result: on 1x8, performance decreases nearly linearly with
 * load (the single OMS is shared, so the AMSs sit idle ~50% of the
 * time with one competitor); configurations with more OMSs degrade
 * more slowly; the "ideal" placement puts non-shredded work on
 * AMS-less processors.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

namespace {

struct MpConfig {
    const char *name;
    std::vector<unsigned> ams;
    /** Pin the shredded app to processors with this many AMSs. */
    unsigned shredProcAms;
    bool idealPlacement; ///< pin spinners away from the shredded CPU
};

Tick
runRaytracerUnder(const MpConfig &cfg, unsigned competitors,
                  const wl::WorkloadParams &params)
{
    wl::Workload w = wl::buildRaytracer(params);
    harness::Experiment exp(mispMp(cfg.ams), rt::Backend::Shred);

    // Pin the shredded thread to a processor with enough AMSs (§5.4:
    // "a thread should not migrate to a MISP processor that does not
    // have the proper number of AMSs").
    std::vector<int> shredAffinity;
    std::vector<int> otherCpus;
    for (unsigned i = 0; i < exp.system().numProcessors(); ++i) {
        int cpu = exp.system().processor(i).cpuId();
        if (exp.system().processor(i).numAms() >= cfg.shredProcAms)
            shredAffinity.push_back(cpu);
        else
            otherCpus.push_back(cpu);
    }
    auto rtProc = exp.load(w.app, shredAffinity);

    wl::WorkloadParams spinParams;
    for (unsigned c = 0; c < competitors; ++c) {
        std::vector<int> affinity;
        if (cfg.idealPlacement && !otherCpus.empty())
            affinity = otherCpus; // keep competitors off the shredded CPU
        exp.load(wl::buildSpinner(spinParams).app, affinity);
    }

    return runTimed(exp, rtProc.process,
                    "fig7_" + std::string(cfg.name) + "_+" +
                        std::to_string(competitors),
                    gBenchDecodeCache)
        .ticks;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);
    wl::WorkloadParams params = defaultParams(quick);
    params.workers = 7;

    printHeader("Figure 6: MISP MP configurations (8 sequencers total)");
    const std::vector<MpConfig> configs = {
        {"4x2", {1, 1, 1, 1}, 1, false},
        {"2x4", {3, 3}, 3, false},
        {"1x8", {7}, 7, false},
        {"1x4+4", {3, 0, 0, 0, 0}, 3, false},
        {"ideal", {3, 0, 0, 0, 0}, 3, true},
        {"smp", {0, 0, 0, 0, 0, 0, 0, 0}, 0, false},
    };
    for (const MpConfig &cfg : configs) {
        std::printf("  %-8s processors:", cfg.name);
        for (unsigned a : cfg.ams)
            std::printf(" [1 OMS + %u AMS]", a);
        std::printf("\n");
    }

    unsigned maxLoad = quick ? 2 : 4;

    printHeader("Figure 7: RayTracer speedup vs unloaded, adding "
                "competing processes");
    std::printf("%-8s", "config");
    for (unsigned load = 0; load <= maxLoad; ++load)
        std::printf(" %8s%u", "+", load);
    std::printf("\n");

    for (const MpConfig &cfg : configs) {
        std::printf("%-8s", cfg.name);
        Tick unloaded = 0;
        for (unsigned load = 0; load <= maxLoad; ++load) {
            if (cfg.name == std::string("smp") && cfg.shredProcAms == 0) {
                // SMP baseline: RayTracer uses OS threads.
                wl::Workload w = wl::buildRaytracer(params);
                harness::Experiment exp(mispMp(cfg.ams),
                                        rt::Backend::OsThread);
                auto rtProc = exp.load(w.app);
                wl::WorkloadParams spinParams;
                for (unsigned c = 0; c < load; ++c)
                    exp.load(wl::buildSpinner(spinParams).app);
                Tick t = runTimed(exp, rtProc.process,
                                  "fig7_smp_+" + std::to_string(load),
                                  gBenchDecodeCache)
                             .ticks;
                if (load == 0)
                    unloaded = t;
                std::printf(" %8.3f",
                            t ? double(unloaded) / double(t) : 0.0);
                std::fflush(stdout);
                continue;
            }
            Tick t = runRaytracerUnder(cfg, load, params);
            if (load == 0)
                unloaded = t;
            std::printf(" %8.3f", t ? double(unloaded) / double(t) : 0.0);
            std::fflush(stdout);
        }
        std::printf("\n");
    }

    std::printf("\nClaim checks (paper Section 5.4):\n");
    std::printf(" - 1x8 degrades nearly linearly (competitors share the "
                "single OMS; AMSs idle);\n");
    std::printf(" - more OMSs (2x4, 4x2) degrade more slowly;\n");
    std::printf(" - ideal placement (competitors on AMS-less CPUs) "
                "preserves throughput.\n");
    return 0;
}
