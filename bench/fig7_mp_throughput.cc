/**
 * @file
 * Figure 6 + Figure 7 — MISP multiprocessor configurations and
 * throughput under multiprogramming.
 *
 * Thin wrapper over the scenario driver: the six 8-sequencer machine
 * configurations, the RayTracer workload, and the 0..4-competitor
 * sweep live in scenarios/fig7.scn and run through the shared
 * ScenarioRunner (the same engine `mispsim scenarios/fig7.scn` uses).
 * This binary derives the figure's presentation: per-configuration
 * speedup relative to the unloaded run.
 *
 * `--points` prints the canonical per-run lines, which CI diffs
 * against `mispsim scenarios/fig7.scn --points`.
 *
 * Paper result: on 1x8, performance decreases nearly linearly with
 * load (the single OMS is shared, so the AMSs sit idle ~50% of the
 * time with one competitor); configurations with more OMSs degrade
 * more slowly; the "ideal" placement puts non-shredded work on
 * AMS-less processors.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    harness::MetricFrame frame;
    int exitCode = 0;
    if (scenarioBenchMain("fig7.scn", "fig7_mp_throughput", argc,
                          argv, &sc, &frame, &exitCode))
        return exitCode;

    printHeader("Figure 6: MISP MP configurations (8 sequencers total)");
    for (const driver::MachineSpec &m : sc.machines) {
        std::printf("  %-8s processors:", m.name.c_str());
        for (unsigned a : m.amsPerProcessor)
            std::printf(" [1 OMS + %u AMS]", a);
        std::printf("\n");
    }

    using Frame = harness::MetricFrame;

    // The swept competitor counts, in grid order.
    std::vector<unsigned> loads;
    for (std::size_t i = 0; i < frame.numRows(); ++i) {
        if (frame.row(i).machine == sc.machines.front().name)
            loads.push_back(frame.row(i).competitors);
    }

    printHeader("Figure 7: RayTracer speedup vs unloaded, adding "
                "competing processes");
    std::printf("%-8s", "config");
    for (unsigned load : loads)
        std::printf(" %8s%u", "+", load);
    std::printf("\n");

    for (const driver::MachineSpec &m : sc.machines) {
        std::printf("%-8s", m.name.c_str());
        std::size_t unloaded = frame.findRow(m.name, sc.workload.name, 0);
        for (unsigned load : loads) {
            std::size_t r = frame.findRow(m.name, sc.workload.name, load);
            double speedup = (r != Frame::npos &&
                              frame.at(r, "ticks") != 0.0 &&
                              unloaded != Frame::npos)
                                 ? frame.at(unloaded, "ticks") /
                                       frame.at(r, "ticks")
                                 : 0.0;
            std::printf(" %8.3f", speedup);
        }
        std::printf("\n");
    }

    std::printf("\nClaim checks (paper Section 5.4):\n");
    std::printf(" - 1x8 degrades nearly linearly (competitors share the "
                "single OMS; AMSs idle);\n");
    std::printf(" - more OMSs (2x4, 4x2) degrade more slowly;\n");
    std::printf(" - ideal placement (competitors on AMS-less CPUs) "
                "preserves throughput.\n");
    return 0;
}
