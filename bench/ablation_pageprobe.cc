/**
 * @file
 * Ablation B (paper §5.3) — page-probe pre-faulting.
 *
 * "If the OMS probes each page ... while executing in the serial region
 * of code that precedes parallel execution, the number of proxy
 * execution events for page faults can be significantly reduced."
 *
 * Thin wrapper over the scenario driver: the workload x prefault grid
 * lives in scenarios/ablation_pageprobe.scn and runs through the
 * unified run layer (the same engine `mispsim` uses); this binary only
 * derives the off -> on comparison. WorkloadParams::prefault makes
 * main touch one byte per data page before creating shreds (real guest
 * loads through the prefault stub), converting AMS proxy faults into
 * cheap serial-region OMS faults.
 *
 * `--points` prints the canonical per-run lines, which CI diffs
 * against `mispsim scenarios/ablation_pageprobe.scn --points`.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    harness::MetricFrame frame;
    int exitCode = 0;
    if (scenarioBenchMain("ablation_pageprobe.scn",
                          "ablation_pageprobe", argc, argv, &sc,
                          &frame, &exitCode))
        return exitCode;

    printHeader("Ablation B: §5.3 page-probe pre-faulting "
                "(prefault off -> on)");
    std::printf("%-18s %10s %10s %10s %10s %10s\n", "application",
                "amsPF-off", "amsPF-on", "omsPF-on", "T-off(M)",
                "T-on(M)");

    using Frame = harness::MetricFrame;
    for (const std::string &name : frame.workloads()) {
        std::size_t off = frame.findRow(
            "misp",
            {{"workload.name", name}, {"workload.prefault", "false"}});
        std::size_t on = frame.findRow(
            "misp",
            {{"workload.name", name}, {"workload.prefault", "true"}});
        if (off == Frame::npos || on == Frame::npos) {
            std::printf("!! missing grid point for %s\n", name.c_str());
            continue;
        }
        std::printf("%-18s %10llu %10llu %10llu %10.1f %10.1f\n",
                    name.c_str(),
                    (unsigned long long)frame.at(
                        off, "events.ams_page_faults"),
                    (unsigned long long)frame.at(
                        on, "events.ams_page_faults"),
                    (unsigned long long)frame.at(
                        on, "events.oms_page_faults"),
                    frame.at(off, "mcycles"), frame.at(on, "mcycles"));
    }

    std::printf("\nReading: probing moves compulsory faults from the "
                "parallel region (each one a\n3-signal proxy + full "
                "serialization) to the serial region, shrinking AMS "
                "proxy\ncounts to ~0 — the optimization the paper "
                "suggests for future runtimes/compilers.\n");
    return 0;
}
