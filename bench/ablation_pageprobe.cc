/**
 * @file
 * Ablation B (paper §5.3) — page-probe pre-faulting.
 *
 * "If the OMS probes each page ... while executing in the serial region
 * of code that precedes parallel execution, the number of proxy
 * execution events for page faults can be significantly reduced."
 *
 * Thin wrapper over the scenario driver: the workload x prefault grid
 * lives in scenarios/ablation_pageprobe.scn and runs through the
 * unified run layer (the same engine `mispsim` uses); this binary only
 * derives the off -> on comparison. WorkloadParams::prefault makes
 * main touch one byte per data page before creating shreds (real guest
 * loads through the prefault stub), converting AMS proxy faults into
 * cheap serial-region OMS faults.
 *
 * `--points` prints the canonical per-run lines, which CI diffs
 * against `mispsim scenarios/ablation_pageprobe.scn --points`.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    driver::Scenario sc;
    std::vector<driver::PointResult> results;
    int exitCode = 0;
    if (scenarioBenchMain("ablation_pageprobe.scn",
                          "ablation_pageprobe", argc, argv, &sc,
                          &results, &exitCode))
        return exitCode;

    printHeader("Ablation B: §5.3 page-probe pre-faulting "
                "(prefault off -> on)");
    std::printf("%-18s %10s %10s %10s %10s %10s\n", "application",
                "amsPF-off", "amsPF-on", "omsPF-on", "T-off(M)",
                "T-on(M)");

    const std::vector<std::string> names = sweptWorkloads(results);

    for (const std::string &name : names) {
        const driver::PointResult *off = driver::findResultCoords(
            results, "misp",
            {{"workload.name", name}, {"workload.prefault", "false"}});
        const driver::PointResult *on = driver::findResultCoords(
            results, "misp",
            {{"workload.name", name}, {"workload.prefault", "true"}});
        if (!off || !on) {
            std::printf("!! missing grid point for %s\n", name.c_str());
            continue;
        }
        std::printf("%-18s %10llu %10llu %10llu %10.1f %10.1f\n",
                    name.c_str(),
                    (unsigned long long)off->run.events.amsPageFaults,
                    (unsigned long long)on->run.events.amsPageFaults,
                    (unsigned long long)on->run.events.omsPageFaults,
                    off->run.ticks / 1e6, on->run.ticks / 1e6);
    }

    std::printf("\nReading: probing moves compulsory faults from the "
                "parallel region (each one a\n3-signal proxy + full "
                "serialization) to the serial region, shrinking AMS "
                "proxy\ncounts to ~0 — the optimization the paper "
                "suggests for future runtimes/compilers.\n");
    return 0;
}
