/**
 * @file
 * Ablation B (paper §5.3) — page-probe pre-faulting.
 *
 * "If the OMS probes each page ... while executing in the serial region
 * of code that precedes parallel execution, the number of proxy
 * execution events for page faults can be significantly reduced."
 *
 * WorkloadParams::prefault makes main touch one byte per data page
 * before creating shreds (real guest loads through the prefault stub),
 * converting AMS proxy faults into cheap serial-region OMS faults.
 */

#include "bench_common.hh"

using namespace misp;
using namespace misp::bench;

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    bool quick = parseBenchFlags(argc, argv);

    printHeader("Ablation B: §5.3 page-probe pre-faulting "
                "(prefault off -> on)");
    std::printf("%-18s %10s %10s %10s %10s %10s\n", "application",
                "amsPF-off", "amsPF-on", "omsPF-on", "T-off(M)",
                "T-on(M)");

    std::vector<std::string> apps =
        quick ? std::vector<std::string>{"dense_mvm"}
              : std::vector<std::string>{"dense_mvm", "sparse_mvm",
                                         "swim"};
    for (const std::string &name : apps) {
        const wl::WorkloadInfo *info = wl::findWorkload(name);
        wl::WorkloadParams off = defaultParams(quick);
        off.prefault = false;
        wl::WorkloadParams on = defaultParams(quick);
        on.prefault = true;

        RunResult roff = runWorkload(mispUni(7), rt::Backend::Shred,
                                     *info, off);
        RunResult ron = runWorkload(mispUni(7), rt::Backend::Shred,
                                    *info, on);
        std::printf("%-18s %10llu %10llu %10llu %10.1f %10.1f\n",
                    name.c_str(),
                    (unsigned long long)roff.amsPageFaults,
                    (unsigned long long)ron.amsPageFaults,
                    (unsigned long long)ron.omsPageFaults,
                    roff.ticks / 1e6, ron.ticks / 1e6);
    }

    std::printf("\nReading: probing moves compulsory faults from the "
                "parallel region (each one a\n3-signal proxy + full "
                "serialization) to the serial region, shrinking AMS "
                "proxy\ncounts to ~0 — the optimization the paper "
                "suggests for future runtimes/compilers.\n");
    return 0;
}
