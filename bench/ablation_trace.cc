/**
 * @file
 * Trace-recorder ablation: what deterministic event tracing costs.
 *
 * Three legs, interleaved over several repetitions (minimum per leg,
 * so scheduler noise cannot manufacture an overhead):
 *
 *   off   recorder absent — every obs::trace() hook is one TLS load
 *         and a null-check
 *   none  recorder attached with an empty category mask — hooks reach
 *         the recorder and are filtered per event
 *   all   every category recorded (engine + snapshot included), the
 *         full cost of capture
 *
 * Measured on the CI smoke sweep (scenarios/smoke.scn) and on a direct
 * dense_mvm kernel run. The disabled-recorder contract — `none` within
 * 1% of `off` — is asserted, not just reported: tracing must be free
 * when it is not recording. Results land in BENCH_trace.json so CI
 * keeps a trajectory.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"
#include "obs/trace.hh"

using namespace misp;
using namespace misp::bench;

namespace {

struct Leg {
    const char *name;
    bool enabled;
    std::uint32_t catMask;
};

constexpr Leg kLegs[] = {
    {"off", false, 0},
    {"none", true, 0},
    {"all", true, obs::kAllCats},
};

struct LegResult {
    std::vector<double> samples; ///< summed run phase, one per rep
    std::uint64_t events = 0;
    std::uint64_t dropped = 0;

    double
    best() const
    {
        return *std::min_element(samples.begin(), samples.end());
    }
    /** Same-configuration spread: (median − best) / best. This is the
     *  resolution limit of the measurement — an overhead smaller than
     *  this is indistinguishable from scheduler jitter. */
    double
    noise() const
    {
        std::vector<double> s = samples;
        std::sort(s.begin(), s.end());
        return s[s.size() / 2] / s.front() - 1.0;
    }
};

/** One sweep pass: summed simulated-run host seconds + trace volume. */
double
sweepOnce(const driver::Scenario &sc,
          const std::vector<driver::ScenarioPoint> &pts, const Leg &leg,
          LegResult *out)
{
    driver::Scenario scLeg = sc;
    scLeg.trace.catMask = leg.catMask;
    driver::RunnerOptions opts;
    opts.hostLines = false;
    opts.traceEnabled = leg.enabled;
    std::vector<driver::PointResult> results =
        driver::ScenarioRunner(opts).runAll(scLeg, pts);
    double secs = 0;
    out->events = 0;
    out->dropped = 0;
    for (const driver::PointResult &r : results) {
        secs += r.run.hostSeconds;
        out->events += r.run.trace.events.size();
        out->dropped += r.run.trace.dropped;
    }
    return secs;
}

/** One direct dense_mvm run through the unified run layer. */
double
kernelOnce(const Leg &leg, LegResult *out)
{
    const wl::WorkloadInfo *info = wl::findWorkload("dense_mvm");
    MISP_ASSERT(info != nullptr);
    harness::RunRequest req;
    req.label = "dense_mvm";
    req.config = mispUni();
    req.target = {"dense_mvm", defaultParams(false)};
    req.hostLine = false;
    req.trace.enabled = leg.enabled;
    req.trace.catMask = leg.catMask;
    harness::RunRecord rec = harness::runOne(req);
    out->events = rec.trace.events.size();
    out->dropped = rec.trace.dropped;
    return rec.hostSeconds;
}

void
jsonLeg(FILE *json, const char *name, const LegResult legs[3],
        bool last)
{
    const double off = legs[0].best();
    std::fprintf(json, "  \"%s\": {\n", name);
    std::fprintf(json, "    \"noise_floor\": %.4f,\n",
                 legs[0].noise());
    for (int l = 0; l < 3; ++l) {
        std::fprintf(
            json,
            "    \"%s\": {\"seconds\": %.6f, \"overhead\": %.4f, "
            "\"events\": %llu, \"dropped\": %llu}%s\n",
            kLegs[l].name, legs[l].best(),
            off > 0 ? legs[l].best() / off - 1.0 : 0.0,
            (unsigned long long)legs[l].events,
            (unsigned long long)legs[l].dropped, l + 1 < 3 ? "," : "");
    }
    std::fprintf(json, "  }%s\n", last ? "" : ",");
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    const bool quick = parseBenchFlags(argc, argv);
    // A single quick sweep is ~70ms of host time — far too short to
    // resolve a sub-1% effect against scheduler jitter. Each sample
    // sums `inner` back-to-back passes, and the reported figure is the
    // minimum over `reps` interleaved samples.
    const int reps = quick ? 5 : 7;
    const int inner = quick ? 3 : 4;

    printHeader("Trace ablation: recorder off vs attached-but-filtered "
                "vs recording-everything");

    std::string err;
    driver::Scenario sc;
    std::vector<driver::ScenarioPoint> pts;
    {
        std::string path =
            driver::findScenarioFile("smoke.scn", argv[0]);
        driver::SpecFile spec;
        if (path.empty() ||
            !driver::SpecFile::parseFile(path, &spec, &err) ||
            !driver::Scenario::fromSpec(spec, &sc, &err) ||
            !sc.expandPoints(quick, &pts, &err)) {
            std::fprintf(stderr, "ablation_trace: %s\n",
                         err.empty() ? "smoke.scn not found"
                                     : err.c_str());
            return 1;
        }
    }

    // Interleave the legs within each repetition so slow host phases
    // (thermal ramps, page-cache warmup) hit every leg equally.
    LegResult sweep[3];
    LegResult kernel[3];
    for (int rep = 0; rep < reps; ++rep) {
        for (int l = 0; l < 3; ++l) {
            LegResult r;
            double s = 0, k = 0;
            for (int i = 0; i < inner; ++i)
                s += sweepOnce(sc, pts, kLegs[l], &r);
            sweep[l].samples.push_back(s);
            sweep[l].events = r.events;
            sweep[l].dropped = r.dropped;
            for (int i = 0; i < inner; ++i)
                k += kernelOnce(kLegs[l], &r);
            kernel[l].samples.push_back(k);
            kernel[l].events = r.events;
            kernel[l].dropped = r.dropped;
        }
    }

    std::printf("%-11s %-6s %12s %10s %10s %12s %10s\n", "target",
                "leg", "best_s", "overhead", "noise", "events",
                "dropped");
    bool ok = true;
    const char *names[2] = {"smoke_sweep", "dense_mvm"};
    LegResult *groups[2] = {sweep, kernel};
    for (int g = 0; g < 2; ++g) {
        const double off = groups[g][0].best();
        const double noise = groups[g][0].noise();
        for (int l = 0; l < 3; ++l) {
            const double over =
                off > 0 ? groups[g][l].best() / off - 1.0 : 0.0;
            std::printf(
                "%-11s %-6s %12.4f %9.2f%% %9.2f%% %12llu %10llu\n",
                names[g], kLegs[l].name, groups[g][l].best(),
                over * 100, l == 0 ? noise * 100 : 0.0,
                (unsigned long long)groups[g][l].events,
                (unsigned long long)groups[g][l].dropped);
            // The contract: a recorder that records nothing costs
            // nothing — within 1%, plus whatever spread the off leg
            // shows against itself (the measurement's own resolution
            // limit; sub-noise differences are not attributable).
            if (l == 1)
                ok = ok && over <= 0.01 + noise;
        }
    }
    // Sanity: the all leg must actually have captured events.
    ok = ok && sweep[2].events > 0 && kernel[2].events > 0;
    ok = ok && sweep[0].events == 0 && kernel[0].events == 0;

    FILE *json = std::fopen("BENCH_trace.json", "w");
    if (json) {
        std::fprintf(json, "{\n  \"scenario\": \"%s\",\n  \"reps\": %d,\n",
                     sc.name.c_str(), reps);
        jsonLeg(json, "smoke_sweep", sweep, false);
        jsonLeg(json, "dense_mvm", kernel, false);
        std::fprintf(json, "  \"disabled_overhead_ok\": %s\n}\n",
                     ok ? "true" : "false");
        std::fclose(json);
        std::printf("wrote BENCH_trace.json\n");
    }

    if (!ok) {
        std::printf("FAIL: attached-but-filtered recorder exceeded the "
                    "1%% overhead budget (or trace volume was wrong)\n");
        return 1;
    }
    return 0;
}
