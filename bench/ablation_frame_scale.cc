/**
 * @file
 * MetricFrame scale ablation: what the interned-id tuple indexes buy
 * at sweep sizes the paper figures never reach (10^2..10^5 rows) —
 * and what they cost to build.
 *
 * For each synthetic sweep size, two frames are built over identical
 * rows: one Lookup::Indexed (hashed coord-tuple indexes, the
 * default) and one Lookup::Linear (the pre-index string-compare
 * walks, kept alive for exactly this measurement). Three phases are
 * timed per size:
 *
 *   build    addRow + finalize (the index-construction overhead)
 *   lookup   a representative query mix — full-tuple findRow,
 *            cross-axis rowWithOverrides, axis-baseline resolution —
 *            over rows spread across the whole frame
 *   emit     writeJson into a discarding stream (the streaming
 *            emitter's row throughput; identical for both modes)
 *
 * Linear lookups at the larger sizes are sampled (the O(rows) walk
 * is the thing being measured; running the full mix would take
 * minutes) and reported per-lookup, so the speedup column compares
 * like with like. The contract is asserted, not just reported:
 * indexed lookups must beat the linear walk by >= 10x at 10^4 rows,
 * and both modes must answer every sampled query identically.
 * VmHWM (peak RSS) after the largest build rides along as the memory
 * proxy. Results land in BENCH_frame_scale.json so CI keeps a
 * trajectory.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "harness/metric_frame.hh"

using namespace misp;
using harness::MetricFrame;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Discards everything, counts bytes: the emit-throughput sink. */
class CountingBuf : public std::streambuf
{
  public:
    std::uint64_t bytes = 0;

  protected:
    int overflow(int c) override
    {
        ++bytes;
        return c;
    }
    std::streamsize xsputn(const char *, std::streamsize n) override
    {
        bytes += static_cast<std::uint64_t>(n);
        return n;
    }
};

/** VmHWM (peak resident set) in kB from /proc/self/status; 0 when
 *  unavailable (non-Linux). */
std::uint64_t
peakRssKb()
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            std::sscanf(line + 6, "%llu",
                        reinterpret_cast<unsigned long long *>(&kb));
            break;
        }
    }
    std::fclose(f);
    return kb;
}

constexpr const char *kMachines[] = {"1p", "misp"};

/** A synthetic sweep of @p points rows: two machines x two axes, the
 *  same shape the scenario grids produce (machines innermost, axis
 *  values as spelled strings). */
struct Sweep {
    std::vector<std::string> aValues, bValues;
    std::size_t combos = 0;

    explicit Sweep(std::size_t points)
    {
        combos = points / 2;
        std::size_t na = 1;
        while (na * na < combos)
            ++na;
        std::size_t nb = (combos + na - 1) / na;
        combos = na * nb;
        for (std::size_t i = 0; i < na; ++i)
            aValues.push_back(std::to_string(1000 + i));
        for (std::size_t j = 0; j < nb; ++j)
            bValues.push_back(std::to_string(100 + j));
    }

    std::size_t rows() const { return combos * 2; }

    MetricFrame build(MetricFrame::Lookup mode) const
    {
        MetricFrame frame(mode);
        harness::RunRecord run;
        run.status = harness::RunStatus::Completed;
        run.valid = true;
        for (const std::string &a : aValues) {
            for (const std::string &b : bValues) {
                for (const char *machine : kMachines) {
                    run.ticks = 1000000 + run.events.timer;
                    run.instsRetired = 500000;
                    ++run.events.timer;
                    frame.addRow(machine, "dense_mvm", 0,
                                 {{"machine.a", a}, {"machine.b", b}},
                                 run);
                }
            }
        }
        frame.finalize("1p");
        return frame;
    }
};

/** The query mix, @p samples groups spread across the frame. Returns
 *  a fold of every answer so the differential check (and the
 *  optimizer) can't skip work. */
std::uint64_t
lookupMix(const MetricFrame &frame, const Sweep &sweep,
          std::size_t samples)
{
    std::uint64_t fold = 0;
    const std::size_t stride =
        sweep.combos <= samples ? 1 : sweep.combos / samples;
    for (std::size_t g = 0; g < sweep.combos; g += stride) {
        const std::string &a =
            sweep.aValues[(g / sweep.bValues.size()) %
                          sweep.aValues.size()];
        const std::string &b = sweep.bValues[g % sweep.bValues.size()];
        // Full-tuple findRow (the wrapper benches' lookup).
        std::size_t r = frame.findRow(
            "misp", {{"machine.a", a}, {"machine.b", b}});
        fold = fold * 31 + r;
        if (r == MetricFrame::npos)
            continue;
        std::size_t group = frame.row(r).group;
        // Cross-axis selector: same coords, first machine.b value.
        fold = fold * 31 +
               frame.rowWithOverrides(
                   group, "misp",
                   {{"machine.b", sweep.bValues.front()}});
        // [report] baseline_axis resolution.
        fold = fold * 31 + frame.axisBaselineRow(r, "machine.a");
    }
    return fold;
}

struct SizeResult {
    std::size_t points = 0;
    double buildIndexedMs = 0, buildLinearMs = 0;
    double lookupIndexedNs = 0, lookupLinearNs = 0;
    double emitMs = 0;
    std::uint64_t emitBytes = 0;
    std::size_t indexedSamples = 0, linearSamples = 0;

    double speedup() const
    {
        return lookupIndexedNs > 0 ? lookupLinearNs / lookupIndexedNs
                                   : 0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = bench::parseBenchFlags(argc, argv);
    setQuietLogging(true);

    std::vector<std::size_t> sizes = {100, 1000, 10000};
    if (!quick)
        sizes.push_back(100000);

    std::printf("# MetricFrame scale: indexed vs linear lookups%s\n",
                quick ? " (quick)" : "");
    std::printf("%8s %12s %12s %12s %12s %9s %10s\n", "points",
                "build-idx-ms", "build-lin-ms", "lookup-idx-ns",
                "lookup-lin-ns", "speedup", "emit-MB/s");

    std::vector<SizeResult> results;
    bool failed = false;
    for (std::size_t points : sizes) {
        Sweep sweep(points);
        SizeResult res;
        res.points = sweep.rows();

        double t0 = now();
        MetricFrame indexed = sweep.build(MetricFrame::Lookup::Indexed);
        double t1 = now();
        MetricFrame linear = sweep.build(MetricFrame::Lookup::Linear);
        double t2 = now();
        res.buildIndexedMs = (t1 - t0) * 1e3;
        res.buildLinearMs = (t2 - t1) * 1e3;

        // Differential check first: both strategies must answer the
        // sampled mix identically (on a capped sample so the linear
        // walk stays affordable).
        const std::size_t diffSamples = 64;
        if (lookupMix(indexed, sweep, diffSamples) !=
            lookupMix(linear, sweep, diffSamples)) {
            std::printf(
                "FAIL: indexed and linear lookups disagree at %zu "
                "points\n",
                res.points);
            failed = true;
        }

        // Indexed: the full mix, repeated at small sizes so the
        // per-lookup time has enough signal.
        const std::size_t reps = sweep.combos >= 10000 ? 1 : 10;
        const std::size_t nIdx = reps * 3 * sweep.combos;
        t0 = now();
        for (std::size_t rep = 0; rep < reps; ++rep)
            lookupMix(indexed, sweep, sweep.combos);
        t1 = now();
        res.indexedSamples = nIdx;
        res.lookupIndexedNs = (t1 - t0) * 1e9 / double(nIdx);

        // Linear: sampled (each query walks O(rows)).
        const std::size_t linSamples =
            sweep.combos <= 500 ? sweep.combos : 500;
        t0 = now();
        lookupMix(linear, sweep, linSamples);
        t1 = now();
        const std::size_t stride = sweep.combos <= linSamples
                                       ? 1
                                       : sweep.combos / linSamples;
        const std::size_t nLin =
            3 * ((sweep.combos + stride - 1) / stride);
        res.linearSamples = nLin;
        res.lookupLinearNs = (t1 - t0) * 1e9 / double(nLin);

        // Emit throughput (streaming writeJson, indexed frame).
        CountingBuf sink;
        std::ostream os(&sink);
        t0 = now();
        indexed.writeJson(os);
        t1 = now();
        res.emitMs = (t1 - t0) * 1e3;
        res.emitBytes = sink.bytes;

        std::printf("%8zu %12.2f %12.2f %12.1f %12.1f %8.1fx %10.1f\n",
                    res.points, res.buildIndexedMs, res.buildLinearMs,
                    res.lookupIndexedNs, res.lookupLinearNs,
                    res.speedup(),
                    double(res.emitBytes) / 1e6 / (res.emitMs / 1e3));
        results.push_back(res);
    }

    const std::uint64_t hwmKb = peakRssKb();
    std::printf("# peak RSS (VmHWM): %llu kB\n",
                static_cast<unsigned long long>(hwmKb));

    // The contract: at 10^4 points the indexed lookups must beat the
    // linear walk by an order of magnitude.
    for (const SizeResult &res : results) {
        if (res.points >= 10000 && res.speedup() < 10.0) {
            std::printf("FAIL: lookup speedup %.1fx < 10x at %zu "
                        "points\n",
                        res.speedup(), res.points);
            failed = true;
        }
    }

    std::FILE *json = std::fopen("BENCH_frame_scale.json", "w");
    if (json) {
        std::fprintf(json, "{\n  \"bench\": \"frame_scale\",\n");
        std::fprintf(json, "  \"quick\": %s,\n",
                     quick ? "true" : "false");
        std::fprintf(json, "  \"peak_rss_kb\": %llu,\n",
                     static_cast<unsigned long long>(hwmKb));
        std::fprintf(json, "  \"sizes\": [");
        for (std::size_t i = 0; i < results.size(); ++i) {
            const SizeResult &res = results[i];
            std::fprintf(json, "%s\n    {", i ? "," : "");
            std::fprintf(json, "\"points\": %zu, ", res.points);
            std::fprintf(json,
                         "\"build_indexed_ms\": %.3f, "
                         "\"build_linear_ms\": %.3f, ",
                         res.buildIndexedMs, res.buildLinearMs);
            std::fprintf(json,
                         "\"lookup_indexed_ns\": %.1f, "
                         "\"lookup_linear_ns\": %.1f, ",
                         res.lookupIndexedNs, res.lookupLinearNs);
            std::fprintf(json, "\"lookup_speedup\": %.2f, ",
                         res.speedup());
            std::fprintf(json,
                         "\"emit_ms\": %.3f, \"emit_bytes\": %llu}",
                         res.emitMs,
                         static_cast<unsigned long long>(
                             res.emitBytes));
        }
        std::fprintf(json, "\n  ]\n}\n");
        std::fclose(json);
        std::printf("# wrote BENCH_frame_scale.json\n");
    }
    return failed ? 1 : 0;
}
