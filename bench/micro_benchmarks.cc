/**
 * @file
 * Microbenchmarks (google-benchmark) for the simulator's primitives and
 * the architectural operations the paper's cost model is built on:
 * event-queue throughput, interpreter speed, SIGNAL round-trip latency
 * (in simulated cycles), shred create/dispatch, and uncontended
 * synchronization. These quantify both *simulator* performance (host
 * time) and *modeled* latencies (reported as counters).
 */

#include <benchmark/benchmark.h>

#include "harness/bare_machine.hh"
#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "workloads/workload.hh"

using namespace misp;

// ---------------------------------------------------------------------
// Simulator primitives (host performance)
// ---------------------------------------------------------------------

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleLambda(i, "e", [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_AssembleSmallProgram(benchmark::State &state)
{
    const std::string src = R"(
        main:
            movi r1, 0
        loop:
            addi r1, r1, 1
            cmpi r1, 100
            jcc.lt loop
            halt
    )";
    for (auto _ : state) {
        isa::Program prog = isa::assemble(src, 0x40'0000);
        benchmark::DoNotOptimize(prog.insts.data());
    }
}
BENCHMARK(BM_AssembleSmallProgram);

static void
BM_InterpreterThroughput(benchmark::State &state)
{
    const std::string src = R"(
        main:
            movi r1, 0
        loop:
            addi r1, r1, 1
            muli r2, r1, 3
            xori r3, r2, 0x55
            cmpi r1, 100000
            jcc.lt loop
            halt
    )";
    std::uint64_t insts = 0;
    for (auto _ : state) {
        harness::BareMachine m(src);
        m.run();
        insts += m.seq.instsRetired();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_InterpreterThroughput);

// ---------------------------------------------------------------------
// Modeled architectural latencies (simulated cycles, via counters)
// ---------------------------------------------------------------------

static void
BM_SignalRoundTripSimCycles(benchmark::State &state)
{
    // Measure the modeled SIGNAL->start latency on an idle AMS by
    // running a ping-pong between the OMS and one AMS.
    const std::string src = R"(
        main:
            rdtick r6
            movi r1, 1
            movi r2, pong
            movi r3, 0
            signal r1, r2, r3
        wait:
            movi r4, 0x8000000
            ld8 r5, [r4]
            cmpi r5, 1
            jcc.ne wait
            rdtick r7
            sub r0, r7, r6
            movi r4, 0x8000008
            st8 [r4], r0
            movi r0, 0
            syscall 2
        pong:
            movi r4, 0x8000000
            movi r5, 1
            st8 [r4], r5
            halt
    )";
    Tick simCycles = 0;
    for (auto _ : state) {
        harness::GuestApp app;
        app.name = "pingpong";
        app.program = isa::assemble(src, mem::kCodeBase);
        harness::DataRegion region;
        region.addr = 0x0800'0000;
        region.size = mem::kPageSize;
        app.data.push_back(region);

        arch::SystemConfig cfg = arch::SystemConfig::uniprocessor(1);
        cfg.kernel.deviceIrqMeanPeriod = 0;
        harness::Experiment exp(cfg, rt::Backend::Shred);
        auto proc = exp.load(app);
        exp.runToCompletion(proc.process, 1'000'000'000);
        simCycles +=
            proc.process->addressSpace().peekWord(0x0800'0008, 8);
    }
    state.counters["sim_cycles_roundtrip"] = benchmark::Counter(
        double(simCycles) / double(state.iterations()));
}
BENCHMARK(BM_SignalRoundTripSimCycles);

static void
BM_ShredCreateJoinSimCycles(benchmark::State &state)
{
    // Modeled cost of creating + joining N trivial shreds.
    const unsigned n = static_cast<unsigned>(state.range(0));
    Tick total = 0;
    for (auto _ : state) {
        wl::WorkloadParams params;
        params.workers = n;
        // A tiny raytracer run dominated by create/dispatch/join.
        wl::Workload w = wl::buildRaytracer(params);
        harness::Experiment exp(arch::SystemConfig::uniprocessor(7),
                                rt::Backend::Shred);
        auto proc = exp.load(w.app);
        total += exp.runToCompletion(proc.process).ticks;
    }
    state.counters["sim_cycles"] =
        benchmark::Counter(double(total) / double(state.iterations()));
}
BENCHMARK(BM_ShredCreateJoinSimCycles)->Arg(1)->Arg(7)->Unit(
    benchmark::kMillisecond);

static void
BM_WorkloadBuild(benchmark::State &state)
{
    // Host-side cost of generating a workload image (input synthesis,
    // code emission, reference computation).
    wl::WorkloadParams params;
    params.workers = 7;
    for (auto _ : state) {
        wl::Workload w = wl::buildDenseMvm(params);
        benchmark::DoNotOptimize(w.app.program.insts.data());
    }
}
BENCHMARK(BM_WorkloadBuild)->Unit(benchmark::kMillisecond);

static void
BM_FullMispRunDenseMvm(benchmark::State &state)
{
    // End-to-end simulator performance for one Figure-4 cell.
    setQuietLogging(true);
    wl::WorkloadParams params;
    params.workers = 7;
    for (auto _ : state) {
        wl::Workload w = wl::buildDenseMvm(params);
        harness::Experiment exp(arch::SystemConfig::uniprocessor(7),
                                rt::Backend::Shred);
        auto proc = exp.load(w.app);
        Tick t = exp.runToCompletion(proc.process).ticks;
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_FullMispRunDenseMvm)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
